package experiments

import (
	"fmt"
	"io"

	"repro/internal/ci/instrument"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// This file reproduces the §3.3 parameter study: "a thorough evaluation
// showed that the impact of allowable error on the interval accuracy
// and performance overhead is negligible beyond 500 IR instructions",
// which is why the paper heuristically sets allowable error equal to
// the probe interval.

// AllowablePoint is one allowable-error setting's aggregate.
type AllowablePoint struct {
	AllowableErrorIR int64
	// MedianOverhead across the sampled workloads.
	MedianOverhead float64
	// MedianAbsError is the median |interval - target| in cycles.
	MedianAbsError int64
	// Probes is the total static probe count.
	Probes int
}

// allowableWorkloads are branchy programs where arm summarization (the
// parameter's whole effect) actually triggers.
var allowableWorkloads = []string{
	"volrend", "fluidanimate", "word_count", "raytrace", "dedup", "radiosity",
}

// MeasureAllowableError sweeps the allowable-error parameter at a
// fixed probe interval and 5000-cycle target. One setting is one
// engine cell; failed settings are reported, not fatal.
func MeasureAllowableError(eng *engine.Engine, values []int64, scale int) ([]AllowablePoint, []CellError) {
	if len(values) == 0 {
		values = []int64{25, 50, 100, 250, 500, 1000, 2000}
	}
	const target = 5000
	cells, errs := engine.Map(eng.Pool, len(values), func(i int) (AllowablePoint, error) {
		ae := values[i]
		var overheads []float64
		var absErrs []int64
		probes := 0
		for _, name := range allowableWorkloads {
			wl := workloads.ByName(name)
			base, err := BaselineCached(eng, wl, scale, 1)
			if err != nil {
				return AllowablePoint{}, err
			}
			prog, err := CompileCached(eng, wl, scale,
				core.WithDesign(instrument.CI),
				core.WithProbeInterval(ProbeIntervalIR),
				core.WithAllowableError(ae))
			if err != nil {
				return AllowablePoint{}, err
			}
			probes += prog.Instr.Probes
			machine := newMachine(eng, prog.Mod, nil, 1)
			machine.LimitInstrs = runLimit
			th := machine.NewThread(0)
			th.RT.IRPerCycle = base.IRPerCycle
			th.RT.RecordIntervals = true
			id := th.RT.RegisterCI(target, func(uint64) { th.Charge(HandlerWorkCycles) })
			if _, err := th.Run("main", 0); err != nil {
				return AllowablePoint{}, fmt.Errorf("%s: %w", name, err)
			}
			overheads = append(overheads, float64(th.Stats.Cycles)/float64(base.Cycles)-1)
			for _, g := range th.RT.Intervals(id) {
				e := g - target
				if e < 0 {
					e = -e
				}
				absErrs = append(absErrs, e)
			}
		}
		pt := AllowablePoint{
			AllowableErrorIR: ae,
			MedianOverhead:   stats.MedianF(overheads),
			Probes:           probes,
		}
		if len(absErrs) > 0 {
			pt.MedianAbsError = stats.Median(absErrs)
		}
		return pt, nil
	})
	var out []AllowablePoint
	for i, pt := range cells {
		if errs[i] == nil {
			out = append(out, pt)
		}
	}
	return out, cellErrors(errs, func(i int) string {
		return fmt.Sprintf("allowable/%d", values[i])
	})
}

// PrintAllowable renders the §3.3 parameter study.
func PrintAllowable(w io.Writer, eng *engine.Engine, scale int) error {
	pts, errs := MeasureAllowableError(eng, nil, scale)
	fmt.Fprintln(w, "Allowable-error study (§3.3): overhead and |interval error| vs setting")
	fmt.Fprintf(w, "%14s%16s%18s%14s\n", "allowable(IR)", "median ovh", "median |err| cy", "static probes")
	for _, p := range pts {
		fmt.Fprintf(w, "%14d%15.1f%%%18d%14d\n",
			p.AllowableErrorIR, p.MedianOverhead*100, p.MedianAbsError, p.Probes)
	}
	fmt.Fprintln(w, "(the paper: negligible impact beyond 500 IR — hence allowable = probe interval)")
	return renderCellErrors(w, errs)
}
