package experiments

import (
	"fmt"
	"io"

	"repro/internal/ci/ciruntime"
	"repro/internal/ci/instrument"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// This file is the quantum-adaptivity figure behind `ciexp quantum`:
// the handler hosts a mixed-request-class service loop (the shared-
// thread polling pattern of §5) at the ramp experiment's 2.0x overload
// regime, and the figure compares how each interval-control policy
// holds the handler-gap tail against the target quantum — across the
// probe designs (CI, Naive), classic hardware interrupts and the
// user-level-interrupt design. The acceptance criterion it encodes:
// FeedbackPID must beat a fixed interval on p99.9 |gap - target| while
// the adaptivity machinery stays inside a Table-7-style ≤2% overhead
// budget: an adaptive CI row may cost at most 2 points more than the
// fixed-interval CI row (handler work is excluded from the overhead,
// so the numbers are comparable to Figure 9's).

const (
	// QuantumTargetCycles is the registered base quantum, matching the
	// 5000-cycle target of Figures 9-12.
	QuantumTargetCycles = 5000
	// QuantumLoadMult scales every request class's service cost — the
	// 2.0x overload point of the ramp sweep (RampMults' last entry).
	QuantumLoadMult = 2.0
	// quantumSeed seeds the per-run request-class stream. Every variant
	// re-seeds identically, so all designs and policies serve the same
	// request sequence.
	quantumSeed = 17
	// QuantumOverheadBudget bounds what interval adaptation may add on
	// top of the design's inherent probe overhead: an adaptive CI row's
	// overhead must stay within this many points of the fixed-interval
	// CI row's (Table 7's ≤2% bar, applied to the policy machinery).
	QuantumOverheadBudget = 0.02
)

// quantumClasses is the request mix served from the handler: mostly
// cheap requests, a quarter moderate, a heavy 5% tail — the mixed-
// class regime where a fixed quantum eats the full lateness of the
// expensive class on every tail fire.
var quantumClasses = []struct {
	Cost   int64 // service cycles at 1.0x load
	Weight int   // percent of requests
}{
	{600, 70}, {2400, 25}, {12000, 5},
}

// quantumClassOf draws the next request's class (0..2) from the
// weighted mix.
func quantumClassOf(rng *sim.RNG) int {
	r := rng.Intn(100)
	acc := 0
	for i, c := range quantumClasses {
		acc += c.Weight
		if int(r) < acc {
			return i
		}
	}
	return len(quantumClasses) - 1
}

// quantumCost is the charged service cost of one request of the class
// at the figure's load multiple.
func quantumCost(class int) int64 {
	return int64(QuantumLoadMult * float64(quantumClasses[class].Cost))
}

// QuantumVariant is one (design, policy) column pair of the figure.
type QuantumVariant struct {
	Design string // CI, Naive, HW, UIntr
	Policy string // fixed, aimd, feedback; "-" where no policy applies
}

// QuantumVariants is the figure's row set: both probe designs under
// all three policies, plus the two interrupt designs (whose cadence is
// a hardware timer — no software policy applies).
var QuantumVariants = []QuantumVariant{
	{"CI", "fixed"}, {"CI", "aimd"}, {"CI", "feedback"},
	{"Naive", "fixed"}, {"Naive", "aimd"}, {"Naive", "feedback"},
	{"HW", "-"}, {"UIntr", "-"},
}

// QuantumRow is one (workload, design, policy) measurement.
type QuantumRow struct {
	Workload string
	Design   string
	Policy   string
	// P50Err/P999Err/MaxErr summarize |gap - target| in cycles over the
	// steady-state fires (first fire skipped).
	P50Err, P999Err, MaxErr int64
	// MeanGap is the mean inter-fire gap in cycles.
	MeanGap float64
	// Overhead is (cycles - charged handler work) / baseline - 1: the
	// delivery mechanism's own cost, comparable to Figure 9.
	Overhead float64
	// Overruns counts policy-classified handler overruns (0 for the
	// fixed policy and the interrupt designs).
	Overruns int64
	// Fires is the handler invocation count; FinalInterval the interval
	// in force when the run ended.
	Fires         int64
	FinalInterval int64
}

// quantumPolicyFor builds the policy under test; nil for "fixed" (no
// policy installed — the registration interval never moves).
func quantumPolicyFor(policy string, classOf func() int) ciruntime.QuantumPolicy {
	switch policy {
	case "aimd":
		return &ciruntime.AIMD{}
	case "feedback":
		return &ciruntime.FeedbackPID{ClassOf: classOf}
	}
	return nil
}

// measureQuantumVariant runs one workload under one (design, policy)
// pair and summarizes its gap error against the target quantum.
func measureQuantumVariant(eng *engine.Engine, wl *workloads.Workload, scale int,
	base Baseline, v QuantumVariant) (QuantumRow, error) {

	rng := sim.NewRNG(quantumSeed)
	var charged int64
	lastClass := 0
	serve := func(charge func(int64)) {
		class := quantumClassOf(rng)
		lastClass = class
		cost := quantumCost(class)
		charged += cost
		charge(cost)
	}

	row := QuantumRow{Workload: wl.Name, Design: v.Design, Policy: v.Policy}
	var gaps []int64
	var cycles int64
	switch v.Design {
	case "CI", "Naive":
		d := instrument.CI
		if v.Design == "Naive" {
			d = instrument.Naive
		}
		prog, err := CompileCached(eng, wl, scale,
			core.WithDesign(d), core.WithProbeInterval(ProbeIntervalIR))
		if err != nil {
			return row, err
		}
		machine := newMachine(eng, prog.Mod, nil, 1)
		machine.LimitInstrs = runLimit
		th := machine.NewThread(0)
		th.RT.IRPerCycle = base.IRPerCycle
		th.RT.RecordIntervals = true
		id := th.RT.RegisterCI(QuantumTargetCycles, func(uint64) { serve(th.Charge) })
		if p := quantumPolicyFor(v.Policy, func() int { return lastClass }); p != nil {
			th.RT.SetPolicy(id, p)
		}
		if _, err := th.Run("main", 0); err != nil {
			return row, fmt.Errorf("%s %s/%s: %w", wl.Name, v.Design, v.Policy, err)
		}
		gaps = th.RT.Intervals(id)
		cycles = th.Stats.Cycles
		row.Overruns = th.RT.Overruns(id)
		row.Fires = th.RT.Fires(id)
		row.FinalInterval = th.RT.CurrentInterval(id)
	case "HW", "UIntr":
		machine := newMachine(eng, SourceModule(eng, wl, scale), nil, 1)
		machine.LimitInstrs = runLimit
		var lastFire int64
		machine.HW = &vm.HWConfig{
			IntervalCycles: QuantumTargetCycles,
			User:           v.Design == "UIntr",
			Handler: func(t *vm.Thread) {
				now := t.Now()
				gaps = append(gaps, now-lastFire)
				lastFire = now
				serve(t.Charge)
			},
		}
		th := machine.NewThread(0)
		if _, err := th.Run("main", 0); err != nil {
			return row, fmt.Errorf("%s %s: %w", wl.Name, v.Design, err)
		}
		cycles = th.Stats.Cycles
		row.Fires = th.Stats.HandlerCalls
		row.FinalInterval = QuantumTargetCycles
	default:
		return row, fmt.Errorf("unknown quantum design %q", v.Design)
	}

	// The first gap spans thread start (or registration) to the first
	// fire — not a steady-state interval.
	if len(gaps) > 0 {
		gaps = gaps[1:]
	}
	errs := make([]int64, 0, len(gaps))
	for _, g := range gaps {
		e := g - QuantumTargetCycles
		if e < 0 {
			e = -e
		}
		errs = append(errs, e)
	}
	if len(errs) == 0 {
		errs = []int64{0}
	}
	if eng != nil && eng.Obs.Enabled() {
		// The per-variant interval-error histograms behind
		// `ciexp quantum -metrics`. Store-skipped cells don't reach
		// here — re-run without -store for full metrics.
		name := "quantum/abs_error/" + v.Design + "/" + v.Policy
		for _, e := range errs {
			eng.Obs.Observe(name, e)
		}
	}
	sum := stats.Summarize(errs)
	row.P50Err, row.P999Err, row.MaxErr = sum.P50, sum.P999, sum.Max
	if len(gaps) > 0 {
		row.MeanGap = stats.Summarize(gaps).MeanVal
	}
	row.Overhead = float64(cycles-charged)/float64(base.Cycles) - 1
	return row, nil
}

// QuantumFigure is the full sweep: per-workload rows plus the
// per-variant aggregate (median error quantiles and overhead across
// workloads, summed fire/overrun counts).
type QuantumFigure struct {
	Workloads []string
	Rows      map[string][]QuantumRow
	Agg       []QuantumRow
	Errs      []CellError
}

// MeasureQuantum runs the adaptivity sweep over the named workloads
// (nil = the figure's default selection). One workload — all eight
// variants — is one engine cell.
func MeasureQuantum(eng *engine.Engine, scale int, names []string) (*QuantumFigure, error) {
	if len(names) == 0 {
		names = []string{"radix", "histogram", "barnes", "matrix_multiply",
			"volrend", "swaptions", "water-nsquared", "dedup"}
	}
	sel, err := WorkloadsByName(names)
	if err != nil {
		return nil, err
	}
	fig := &QuantumFigure{Rows: make(map[string][]QuantumRow)}
	cells, errs := engine.Map(eng.Pool, len(sel), func(i int) ([]QuantumRow, error) {
		wl := sel[i]
		key := "quantum/" + wl.Name
		hash := engine.Hash("quantum", engine.ModuleFingerprint(SourceModule(eng, wl, scale)),
			scale, int64(QuantumTargetCycles), QuantumLoadMult, quantumSeed,
			fmt.Sprint(quantumClasses), QuantumVariants, ProbeIntervalIR, runLimit)
		rows, _, err := engine.CellDo(eng, key, hash, func() ([]QuantumRow, error) {
			base, err := BaselineCached(eng, wl, scale, 1)
			if err != nil {
				return nil, err
			}
			rows := make([]QuantumRow, 0, len(QuantumVariants))
			for _, v := range QuantumVariants {
				row, err := measureQuantumVariant(eng, wl, scale, base, v)
				if err != nil {
					return nil, err
				}
				rows = append(rows, row)
			}
			return rows, nil
		})
		return rows, err
	})
	for i, rows := range cells {
		if errs[i] != nil {
			continue
		}
		fig.Workloads = append(fig.Workloads, sel[i].Name)
		fig.Rows[sel[i].Name] = rows
	}
	fig.Errs = cellErrors(errs, func(i int) string { return "quantum/" + sel[i].Name })
	fig.Agg = aggregateQuantum(fig)
	return fig, nil
}

// aggregateQuantum folds the per-workload rows into one row per
// variant: median error quantiles, gap and overhead across workloads;
// fires and overruns summed.
func aggregateQuantum(fig *QuantumFigure) []QuantumRow {
	agg := make([]QuantumRow, 0, len(QuantumVariants))
	for vi, v := range QuantumVariants {
		var p50s, p999s, maxes, finals []int64
		var gapMeans, ovhs []float64
		out := QuantumRow{Workload: "median", Design: v.Design, Policy: v.Policy}
		for _, name := range fig.Workloads {
			row := fig.Rows[name][vi]
			p50s = append(p50s, row.P50Err)
			p999s = append(p999s, row.P999Err)
			maxes = append(maxes, row.MaxErr)
			finals = append(finals, row.FinalInterval)
			gapMeans = append(gapMeans, row.MeanGap)
			ovhs = append(ovhs, row.Overhead)
			out.Overruns += row.Overruns
			out.Fires += row.Fires
		}
		if len(p50s) > 0 {
			out.P50Err = stats.Median(p50s)
			out.P999Err = stats.Median(p999s)
			out.MaxErr = stats.Median(maxes)
			out.FinalInterval = stats.Median(finals)
			out.MeanGap = stats.MedianF(gapMeans)
			out.Overhead = stats.MedianF(ovhs)
		}
		agg = append(agg, out)
	}
	return agg
}

// QuantumAgg returns the aggregate row for one (design, policy) pair,
// or false when the sweep produced no rows for it.
func (fig *QuantumFigure) QuantumAgg(design, policy string) (QuantumRow, bool) {
	for _, r := range fig.Agg {
		if r.Design == design && r.Policy == policy {
			return r, len(fig.Workloads) > 0
		}
	}
	return QuantumRow{}, false
}

// CheckQuantum evaluates the figure's acceptance gates and returns one
// message per violation: FeedbackPID must beat the fixed interval on
// p99.9 gap error under the CI design, and an adaptive CI row must not
// cost more than the overhead budget on top of the fixed CI row.
func (fig *QuantumFigure) CheckQuantum() []string {
	var bad []string
	fixed, ok1 := fig.QuantumAgg("CI", "fixed")
	fb, ok2 := fig.QuantumAgg("CI", "feedback")
	if !ok1 || !ok2 {
		return []string{"sweep produced no CI rows to gate"}
	}
	if fb.P999Err >= fixed.P999Err {
		bad = append(bad, fmt.Sprintf(
			"CI/feedback p99.9 gap error %d >= CI/fixed %d — the controller stopped helping",
			fb.P999Err, fixed.P999Err))
	}
	for _, policy := range []string{"aimd", "feedback"} {
		if r, ok := fig.QuantumAgg("CI", policy); ok && r.Overhead > fixed.Overhead+QuantumOverheadBudget {
			bad = append(bad, fmt.Sprintf(
				"CI/%s overhead %.2f%% exceeds the fixed row's %.2f%% by more than the %.0f-point budget",
				policy, 100*r.Overhead, 100*fixed.Overhead, 100*QuantumOverheadBudget))
		}
	}
	return bad
}

// PrintQuantum runs the sweep and renders the adaptivity table, then
// applies the acceptance gates so `ciexp quantum` exits non-zero when
// the feedback controller stops beating the fixed quantum or the CI
// rows leave the overhead budget. quick shrinks the workload set.
func PrintQuantum(w io.Writer, eng *engine.Engine, scale int, quick bool) error {
	var names []string
	if quick {
		names = []string{"radix", "histogram", "matrix_multiply", "dedup"}
	}
	fig, err := MeasureQuantum(eng, scale, names)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Quantum adaptivity: handler-gap error vs %d-cycle target at %.1fx load, mixed request classes (%d workloads)\n",
		QuantumTargetCycles, QuantumLoadMult, len(fig.Workloads))
	fmt.Fprintf(w, "%-8s%-10s%12s%14s%12s%12s%10s%10s%10s\n",
		"design", "policy", "p50|err|", "p99.9|err|", "max|err|", "mean-gap", "ovh", "overruns", "final-int")
	for _, r := range fig.Agg {
		fmt.Fprintf(w, "%-8s%-10s%12d%14d%12d%12.0f%9.1f%%%10d%10d\n",
			r.Design, r.Policy, r.P50Err, r.P999Err, r.MaxErr, r.MeanGap,
			100*r.Overhead, r.Overruns, r.FinalInterval)
	}
	violations := fig.CheckQuantum()
	for _, v := range violations {
		fmt.Fprintf(w, "gate violation: %s\n", v)
	}
	if err := renderCellErrors(w, fig.Errs); err != nil {
		return err
	}
	if len(violations) > 0 {
		return fmt.Errorf("quantum: %d gate violation(s)", len(violations))
	}
	return nil
}
