package experiments

import (
	"testing"

	"repro/internal/ci/ciruntime"
	"repro/internal/engine"
	"repro/internal/overload"
)

const rampTestDuration = 26_000_000 // 10 ms of virtual time

// rampByKey indexes rows by (mult, admission).
func rampByKey(t *testing.T, rows []RampRow) map[[2]any]RampRow {
	t.Helper()
	m := make(map[[2]any]RampRow, len(rows))
	for _, r := range rows {
		m[[2]any{r.Mult, r.Admission}] = r
	}
	return m
}

func runRamp(t *testing.T, workers int) []RampRow {
	t.Helper()
	eng := &engine.Engine{Pool: engine.NewPool(workers)}
	rows, cellErrs := MeasureLoadRamp(eng, 7, rampTestDuration, nil, nil)
	if len(cellErrs) > 0 {
		t.Fatalf("ramp cells failed: %v", cellErrs)
	}
	if len(rows) != 2*len(RampMults) {
		t.Fatalf("got %d rows, want %d", len(rows), 2*len(RampMults))
	}
	return rows
}

// The issue's acceptance criterion: at 2x saturating load with
// admission enabled, P999 stays within 3x of its 0.8x value and
// goodput within 10% of capacity; with admission disabled the same
// sweep diverges. Deterministic across worker counts.
func TestRampAdmissionBoundsTailAndGoodput(t *testing.T) {
	rows := runRamp(t, 1)
	byKey := rampByKey(t, rows)
	under := byKey[[2]any{0.8, true}]
	atCap := byKey[[2]any{1.0, true}]
	over := byKey[[2]any{2.0, true}]

	if under.Res.P999Us <= 0 || over.Res.P999Us <= 0 {
		t.Fatal("missing latency samples")
	}
	if over.Res.P999Us > 3*under.Res.P999Us {
		t.Errorf("admission on: p99.9 at 2.0x = %.1fµs exceeds 3x the 0.8x value %.1fµs",
			over.Res.P999Us, under.Res.P999Us)
	}
	// Capacity is operational: what the admission-enabled system
	// achieves at exactly saturating load.
	capacity := atCap.Res.AchievedLoad
	if over.Res.AchievedLoad < 0.9*capacity {
		t.Errorf("admission on: goodput at 2.0x = %.0f/s below 90%% of capacity %.0f/s",
			over.Res.AchievedLoad, capacity)
	}
	// The excess must actually have been refused, not queued.
	if frac := over.Res.Overload.RejectFrac(); frac < 0.3 {
		t.Errorf("admission on at 2.0x rejected only %.1f%%, expected the overload excess", 100*frac)
	}
	// Brownout must have parked the miner under overload.
	if over.Res.Overload.MaxBrownout < 1 {
		t.Error("admission on at 2.0x never entered brownout")
	}
}

// With admission disabled the 2x tail is unbounded: far beyond the 3x
// envelope, and still growing when the run is extended — the backlog
// feedback loop (poll cost grows with queue length, which grows the
// poll period, which grows the queue) never converges above capacity.
func TestRampNoAdmissionDiverges(t *testing.T) {
	rows := runRamp(t, 1)
	byKey := rampByKey(t, rows)
	under := byKey[[2]any{0.8, false}]
	over := byKey[[2]any{2.0, false}]
	if over.Res.P999Us <= 3*under.Res.P999Us {
		t.Fatalf("admission off: p99.9 at 2.0x = %.1fµs did not blow past 3x the 0.8x value %.1fµs",
			over.Res.P999Us, under.Res.P999Us)
	}
	// Double the horizon: the tail keeps growing with run length
	// (unbounded growth), while the admission-enabled tail stays put.
	eng := &engine.Engine{Pool: engine.NewPool(1)}
	longRows, cellErrs := MeasureLoadRamp(eng, 7, 2*rampTestDuration, []float64{2.0}, nil)
	if len(cellErrs) > 0 {
		t.Fatalf("long ramp cells failed: %v", cellErrs)
	}
	longByKey := rampByKey(t, longRows)
	longOff := longByKey[[2]any{2.0, false}]
	longOn := longByKey[[2]any{2.0, true}]
	if longOff.Res.P999Us < 1.5*over.Res.P999Us {
		t.Errorf("admission off: p99.9 grew only %.1f -> %.1fµs when the run doubled; expected unbounded growth",
			over.Res.P999Us, longOff.Res.P999Us)
	}
	shortOn := byKey[[2]any{2.0, true}]
	if longOn.Res.P999Us > 1.5*shortOn.Res.P999Us {
		t.Errorf("admission on: p99.9 grew %.1f -> %.1fµs when the run doubled; expected a flat tail",
			shortOn.Res.P999Us, longOn.Res.P999Us)
	}
}

// Satellite guard for -quantum-policy: the ramp's SLO must hold no
// matter which handler-interval controller drives the CI runtime. Each
// adaptive policy (AIMD, feedback PID) is swept with admission on and
// judged against the same p99.9/reject guard as the fixed quantum; the
// run must also actually differ from the fixed-quantum run, proving
// the factory reached the poll loop rather than being dropped on the
// floor, and the soak's quick script must stay violation-free under
// the adaptive interval too.
func TestRampQuantumPoliciesHoldSLO(t *testing.T) {
	slo := overload.SLO{P999Us: 500, MaxRejectFrac: 0.1}
	eng := &engine.Engine{Pool: engine.NewPool(0)}
	fixed := runRamp(t, 1)
	policies := map[string]func() ciruntime.QuantumPolicy{
		"aimd":     func() ciruntime.QuantumPolicy { return &ciruntime.AIMD{} },
		"feedback": func() ciruntime.QuantumPolicy { return &ciruntime.FeedbackPID{} },
	}
	for name, factory := range policies {
		rows, cellErrs := MeasureLoadRamp(eng, 7, rampTestDuration, nil, factory)
		if len(cellErrs) > 0 {
			t.Fatalf("%s: ramp cells failed: %v", name, cellErrs)
		}
		if len(rows) != len(fixed) {
			t.Fatalf("%s: got %d rows, want %d", name, len(rows), len(fixed))
		}
		differs := false
		for i, r := range rows {
			if r != fixed[i] {
				differs = true
			}
			if !r.Admission {
				continue
			}
			if err := slo.Check(r.Res.P999Us, r.Res.Overload.RejectFrac(), RampExcess(r.Mult)); err != nil {
				t.Errorf("%s at %.1fx: SLO violated under adaptive quantum: %v", name, r.Mult, err)
			}
		}
		if !differs {
			t.Errorf("%s: sweep byte-identical to the fixed quantum — policy never reached the poll loop", name)
		}
		soakRows, soakErrs := RunSoak(eng, 7, rampTestDuration, soakQuickPhases, slo, factory)
		if len(soakErrs) > 0 {
			t.Fatalf("%s: soak cells failed: %v", name, soakErrs)
		}
		for _, r := range soakRows {
			if len(r.Violations) > 0 {
				t.Errorf("%s soak phase %d (%.1fx): %v", name, r.Phase, r.Mult, r.Violations)
			}
		}
	}
}

// The sweep is byte-identical at any pool worker count.
func TestRampDeterministicAcrossWorkers(t *testing.T) {
	serial := runRamp(t, 1)
	parallel := runRamp(t, 4)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("row %d differs between -workers 1 and 4:\n%+v\n%+v", i, serial[i], parallel[i])
		}
	}
}
