package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ir"
	"repro/internal/sanitize"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// This file binds the sweeps to the parallel experiment engine
// (internal/engine): memoized source modules, baselines and compiled
// programs keyed by (workload, scale, design, interval-config), plus
// the per-cell error collection that keeps one failing cell from
// losing a multi-minute run.

// CellError records one failed sweep cell; the surrounding sweep keeps
// going and reports every failure at the end.
type CellError struct {
	// Cell names the failed unit, e.g. "fig9/barnes".
	Cell string
	// Err is the failure rendered as a string (store- and
	// JSON-friendly).
	Err string
}

func (e CellError) String() string { return fmt.Sprintf("%s: %s", e.Cell, e.Err) }

// cellErrors converts engine.Map error slots into labeled CellErrors,
// preserving input order.
func cellErrors(errs []error, label func(i int) string) []CellError {
	var out []CellError
	for i, err := range errs {
		if err != nil {
			out = append(out, CellError{Cell: label(i), Err: err.Error()})
		}
	}
	return out
}

// renderCellErrors prints a failure footer (nothing on a clean sweep,
// keeping successful output byte-identical to the serial pipeline) and
// returns an aggregate error when any cell failed.
func renderCellErrors(w io.Writer, errs []CellError) error {
	if len(errs) == 0 {
		return nil
	}
	fmt.Fprintf(w, "%d sweep cell(s) failed:\n", len(errs))
	for _, ce := range errs {
		fmt.Fprintf(w, "  %-24s %s\n", ce.Cell, ce.Err)
	}
	return fmt.Errorf("%d sweep cell(s) failed", len(errs))
}

// progEntry is the cached compilation of one (workload, scale, config)
// cell: the program plus a fingerprint guard proving VM runs never
// mutate the shared instrumented module.
type progEntry struct {
	Prog  *core.Program
	Guard *engine.GuardedModule
}

// cfgKey folds every compilation-relevant core.Config field into a
// cache key component.
func cfgKey(cfg core.Config) string {
	return fmt.Sprintf("%v/pi%d/ae%d/xc%d/lt%t/lc%t/o%t/tier-%s",
		cfg.Design, cfg.ProbeIntervalIR, cfg.AllowableErrorIR, cfg.ExternCostIR,
		cfg.DisableLoopTransform, cfg.DisableLoopClone, cfg.Optimize, cfg.Tier)
}

// newMachine builds a VM on the engine's execution tier (interpreter
// with a nil engine).
func newMachine(eng *engine.Engine, m *ir.Module, model *vm.CostModel, threads int) *vm.VM {
	v := vm.New(m, model, threads)
	if eng != nil {
		v.Tier = eng.Tier
	}
	return v
}

// SourceModule returns the workload's uninstrumented module, memoized
// per (workload, scale) and shared read-only across cells (core.Compile
// clones it before instrumenting). With a nil engine it builds fresh.
func SourceModule(eng *engine.Engine, wl *workloads.Workload, scale int) *ir.Module {
	if eng == nil || eng.Cache == nil {
		return wl.Build(scale)
	}
	key := fmt.Sprintf("src/%s/s%d", wl.Name, scale)
	v, _ := eng.Cache.Get(key, func() (any, error) {
		return engine.GuardModule(wl.Build(scale)), nil
	})
	return v.(*engine.GuardedModule).Mod
}

// BaselineCached returns the workload's uninstrumented baseline run,
// memoized per (workload, scale, threads).
func BaselineCached(eng *engine.Engine, wl *workloads.Workload, scale, threads int) (Baseline, error) {
	if eng == nil || eng.Cache == nil {
		return MeasureBaseline(wl, scale, threads)
	}
	key := fmt.Sprintf("base/%s/s%d/t%d", wl.Name, scale, threads)
	v, err := eng.Cache.Get(key, func() (any, error) {
		return runBaseline(eng, SourceModule(eng, wl, scale), wl.Name, threads)
	})
	if err != nil {
		return Baseline{}, err
	}
	return v.(Baseline), nil
}

// compileMaybeChecked compiles src under the resolved options, routing
// through the translation-validation sanitizer when the engine asks
// for it (Engine.SanitizeOnMiss). Sanitized compiles pay for
// stage-by-stage semantic checks; with memoization the cost lands only
// on cache misses.
func compileMaybeChecked(eng *engine.Engine, src *ir.Module, opts []core.Option) (*core.Program, error) {
	if eng != nil && eng.SanitizeOnMiss {
		return sanitize.CompileChecked(src, core.ConfigOf(opts...), sanitize.Options{})
	}
	return core.Compile(src, opts...)
}

// CompileCached compiles the workload under the given options, memoized
// per (workload, scale, resolved config). The returned program's module
// is shared across cells; callers must treat it as read-only (VM runs
// do — the fingerprint guard in the cache proves it).
func CompileCached(eng *engine.Engine, wl *workloads.Workload, scale int, opts ...core.Option) (*core.Program, error) {
	if eng != nil {
		// Bake the engine's tier into the program (an explicit WithTier
		// among opts still wins — options apply in order).
		opts = append([]core.Option{core.WithTier(eng.Tier)}, opts...)
	}
	cfg := core.ConfigOf(opts...)
	if eng == nil || eng.Cache == nil || cfg.ImportedCosts != nil {
		return compileMaybeChecked(eng, SourceModule(eng, wl, scale), opts)
	}
	key := fmt.Sprintf("prog/%s/s%d/%s", wl.Name, scale, cfgKey(cfg))
	v, err := eng.Cache.Get(key, func() (any, error) {
		prog, err := compileMaybeChecked(eng, SourceModule(eng, wl, scale), opts)
		if err != nil {
			return nil, err
		}
		return progEntry{Prog: prog, Guard: engine.GuardModule(prog.Mod)}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(progEntry).Prog, nil
}

// VerifyCachedModules re-fingerprints every guarded module in the
// engine's cache and returns the first mutation found. Tests run it
// after sweeps to prove that sharing instrumented modules across cells
// (instead of deep-copying per cell) is sound.
func VerifyCachedModules(eng *engine.Engine) error {
	if eng == nil || eng.Cache == nil {
		return nil
	}
	var firstErr error
	eng.Cache.Range(func(key string, val any) {
		var g *engine.GuardedModule
		switch v := val.(type) {
		case *engine.GuardedModule:
			g = v
		case progEntry:
			g = v.Guard
		default:
			return
		}
		if err := g.Verify(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", key, err)
		}
	})
	return firstErr
}

// AllWorkloads returns pointers to the full Table-7 workload list in
// paper order.
func AllWorkloads() []*workloads.Workload {
	sel := make([]*workloads.Workload, len(workloads.All))
	for i := range workloads.All {
		sel[i] = &workloads.All[i]
	}
	return sel
}

// WorkloadsByName resolves names to workloads, failing on unknowns.
func WorkloadsByName(names []string) ([]*workloads.Workload, error) {
	sel := make([]*workloads.Workload, 0, len(names))
	for _, n := range names {
		wl := workloads.ByName(n)
		if wl == nil {
			return nil, fmt.Errorf("unknown workload %q", n)
		}
		sel = append(sel, wl)
	}
	return sel, nil
}
