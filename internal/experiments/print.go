package experiments

import (
	"fmt"
	"io"

	"repro/internal/ci/instrument"
	"repro/internal/engine"
)

// figureDesigns are the designs plotted in Figures 9-11.
var figureDesigns = []instrument.Design{
	instrument.CI, instrument.CICycles, instrument.CnB,
	instrument.CD, instrument.Naive,
}

// allDesigns adds the two the paper reports in prose only ("we omit
// CnB-cycles and Naive-cycles to conserve room in the plots").
var allDesigns = append(append([]instrument.Design{}, figureDesigns...),
	instrument.NaiveCycles, instrument.CnBCycles)

// PrintFigureOverhead renders Figure 9 (threads=1) / Figure 11
// (threads=32) as a table of per-workload overheads. With all set, the
// prose-only designs (Naive-Cycles, CnB-Cycles) are included. Failed
// cells are reported after the table and produce a non-nil error
// without suppressing the successful rows.
func PrintFigureOverhead(w io.Writer, eng *engine.Engine, threads, scale int, all bool) error {
	designs := figureDesigns
	if all {
		designs = allDesigns
	}
	fig := MeasureFigureOverhead(eng, threads, scale, designs)
	fig.Render(w)
	return renderCellErrors(w, fig.Errs)
}

// Render writes the figure as the evaluation's table format.
func (fig *FigureOverhead) Render(w io.Writer) {
	figName := "Figure 9"
	if fig.Threads != 1 {
		figName = "Figure 11"
	}
	fmt.Fprintf(w, "%s: overhead of CI designs, %d thread(s), %d-cycle interval\n",
		figName, fig.Threads, fig.IntervalCycles)
	fmt.Fprintf(w, "%-18s", "workload")
	for _, d := range fig.Designs {
		fmt.Fprintf(w, "%12s", d)
	}
	fmt.Fprintln(w)
	for _, wlRow := range orderedRows(fig) {
		fmt.Fprintf(w, "%-18s", wlRow[0].Workload)
		for _, row := range wlRow {
			fmt.Fprintf(w, "%11.1f%%", row.Overhead*100)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-18s", "median")
	for _, m := range fig.Medians {
		fmt.Fprintf(w, "%11.1f%%", m*100)
	}
	fmt.Fprintln(w)
}

func orderedRows(fig *FigureOverhead) [][]OverheadRow {
	var out [][]OverheadRow
	for _, name := range workloadOrder() {
		if rows, ok := fig.Rows[name]; ok {
			out = append(out, rows)
		}
	}
	return out
}

// PrintFigure10 renders the interval-accuracy table.
func PrintFigure10(w io.Writer, eng *engine.Engine, scale int) error {
	designs := []instrument.Design{
		instrument.CI, instrument.CICycles, instrument.CnB,
		instrument.CD, instrument.Naive,
	}
	rows, errs := MeasureFigureAccuracy(eng, scale, designs)
	RenderFigure10(w, rows)
	return renderCellErrors(w, errs)
}

// RenderFigure10 writes the accuracy rows as the Figure 10 table.
func RenderFigure10(w io.Writer, rows []AccuracyRow) {
	fmt.Fprintln(w, "Figure 10: interval error vs 5000-cycle target (cycles), 1 thread")
	fmt.Fprintf(w, "%-18s%-12s%10s%10s%10s%10s%10s\n",
		"workload", "design", "p10", "median", "p90", "p99", "mean")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s%-12s%10d%10d%10d%10d%10.0f\n",
			r.Workload, r.Design.String(), r.Errors.P10, r.Errors.P50,
			r.Errors.P90, r.Errors.P99, r.Errors.MeanVal)
	}
}

// PrintFigure12 renders the CI vs hardware-interrupt interval sweep.
func PrintFigure12(w io.Writer, eng *engine.Engine, scale int, quick bool) error {
	var names []string
	if quick {
		names = []string{"radix", "histogram", "barnes", "matrix_multiply",
			"volrend", "swaptions", "water-nsquared", "dedup"}
	}
	pts, cerrs, err := MeasureFigure12(eng, scale, nil, names)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 12: slowdown vs interrupt interval (median across workloads)")
	fmt.Fprintf(w, "%12s%14s%14s\n", "interval", "CI", "HW-interrupt")
	for _, p := range pts {
		fmt.Fprintf(w, "%12d%13.2fx%13.2fx\n", p.IntervalCycles, p.CISlowdown, p.HWSlowdown)
	}
	return renderCellErrors(w, cerrs)
}

// PrintTable7 renders Table 7.
func PrintTable7(w io.Writer, eng *engine.Engine, scale int) error {
	rows, geo, errs := MeasureTable7(eng, scale)
	fmt.Fprintln(w, "Table 7: runtimes (PT in model-ms) and normalized CI / Naive, 1 & 32 threads")
	fmt.Fprintf(w, "%-18s%10s%8s%8s%10s%8s%8s\n", "workload", "PT(1)", "CI(1)", "N(1)", "PT(32)", "CI(32)", "N(32)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s%10.1f%8.2f%8.2f%10.1f%8.2f%8.2f\n",
			r.Workload, r.PTms1, r.CI1, r.N1, r.PTms32, r.CI32, r.N32)
	}
	fmt.Fprintf(w, "%-18s%10s%8.2f%8.2f%10s%8.2f%8.2f\n", "geo-mean", "", geo.CI1, geo.N1, "", geo.CI32, geo.N32)
	return renderCellErrors(w, errs)
}

func workloadOrder() []string {
	return []string{
		"water-nsquared", "water-spatial", "ocean-cp", "ocean-ncp",
		"barnes", "volrend", "fmm", "raytrace", "radiosity", "radix",
		"fft", "lu-c", "lu-nc", "cholesky", "reverse_index", "histogram",
		"kmeans", "pca", "matrix_multiply", "string_match",
		"linear_regression", "word_count", "blackscholes",
		"fluidanimate", "swaptions", "canneal", "streamcluster", "dedup",
	}
}
