package experiments

import (
	"fmt"
	"io"

	"repro/internal/ci/instrument"
	"repro/internal/core"
	"repro/internal/engine"
)

// This file reproduces the §5.4 probe-execution claim: "These results
// correspond well with detailed measurements counting the number of
// probes executed... in the vast majority of applications, CI reduced
// probe executions by over 50% vs. Naive."

// ProbeCountRow compares dynamic probe executions per workload.
type ProbeCountRow struct {
	Workload string
	// CIProbes / NaiveProbes are dynamic probe executions.
	CIProbes, NaiveProbes int64
	// CIStatic / NaiveStatic are static probe instruction counts.
	CIStatic, NaiveStatic int
	// Reduction is 1 - CI/Naive (dynamic).
	Reduction float64
	// TakenRate is the fraction of CI probes that raised an interrupt.
	TakenRate float64
}

// MeasureProbeCounts runs each workload under CI and Naive and counts
// probe executions. One workload is one engine cell.
func MeasureProbeCounts(eng *engine.Engine, scale int, intervalCycles int64) ([]ProbeCountRow, []CellError) {
	sel := AllWorkloads()
	cells, errs := engine.Map(eng.Pool, len(sel), func(i int) (ProbeCountRow, error) {
		wl := sel[i]
		key := "probes/" + wl.Name
		hash := engine.Hash("probes", engine.ModuleFingerprint(SourceModule(eng, wl, scale)),
			scale, intervalCycles, ProbeIntervalIR, HandlerWorkCycles, runLimit)
		row, _, err := engine.CellDo(eng, key, hash, func() (ProbeCountRow, error) {
			base, err := BaselineCached(eng, wl, scale, 1)
			if err != nil {
				return ProbeCountRow{}, err
			}
			row := ProbeCountRow{Workload: wl.Name}
			for _, d := range []instrument.Design{instrument.CI, instrument.Naive} {
				prog, err := CompileCached(eng, wl, scale,
					core.WithDesign(d), core.WithProbeInterval(ProbeIntervalIR))
				if err != nil {
					return row, err
				}
				machine := newMachine(eng, prog.Mod, nil, 1)
				machine.LimitInstrs = runLimit
				th := machine.NewThread(0)
				th.RT.IRPerCycle = base.IRPerCycle
				th.RT.RegisterCI(intervalCycles, func(uint64) { th.Charge(HandlerWorkCycles) })
				if _, err := th.Run("main", 0); err != nil {
					return row, fmt.Errorf("%s/%v: %w", wl.Name, d, err)
				}
				if d == instrument.CI {
					row.CIProbes = th.Stats.Probes
					row.CIStatic = prog.Instr.Probes
					if th.Stats.Probes > 0 {
						row.TakenRate = float64(th.Stats.ProbesTaken) / float64(th.Stats.Probes)
					}
				} else {
					row.NaiveProbes = th.Stats.Probes
					row.NaiveStatic = prog.Instr.Probes
				}
			}
			if row.NaiveProbes > 0 {
				row.Reduction = 1 - float64(row.CIProbes)/float64(row.NaiveProbes)
			}
			return row, nil
		})
		return row, err
	})
	var rows []ProbeCountRow
	for i, row := range cells {
		if errs[i] == nil {
			rows = append(rows, row)
		}
	}
	return rows, cellErrors(errs, func(i int) string { return "probes/" + sel[i].Name })
}

// PrintProbeCounts renders the probe-execution comparison.
func PrintProbeCounts(w io.Writer, eng *engine.Engine, scale int) error {
	rows, errs := MeasureProbeCounts(eng, scale, 5000)
	fmt.Fprintln(w, "Probe executions, CI vs Naive (§5.4: CI reduces executions >50% in most programs)")
	fmt.Fprintf(w, "%-18s%14s%14s%12s%12s%10s\n",
		"workload", "CI dynamic", "Naive dyn", "reduction", "CI static", "taken")
	over50 := 0
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s%14d%14d%11.0f%%%12d%9.1f%%\n",
			r.Workload, r.CIProbes, r.NaiveProbes, r.Reduction*100, r.CIStatic, r.TakenRate*100)
		if r.Reduction > 0.5 {
			over50++
		}
	}
	fmt.Fprintf(w, "%d/%d workloads above 50%% reduction\n", over50, len(rows))
	return renderCellErrors(w, errs)
}
