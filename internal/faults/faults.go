// Package faults is a seeded, fully deterministic fault-plan engine
// for chaos-testing the CI runtime and the three systems applications.
// A Plan declares the fault model for one run; each subsystem derives
// an Injector from it, which owns an independent deterministic random
// stream (so adding faults to one subsystem never perturbs another's
// sequence) and counts every fault it injects.
//
// Fault classes, following the failure modes the paper's systems face
// in deployment:
//
//   - Bernoulli packet drop / corruption / reordering on the network
//     path, on top of the NIC's ring-overflow loss (internal/netsim).
//   - External-call stall spikes modelling page faults and slow
//     syscalls inside otherwise-instrumented code.
//   - Delegation/worker server stalls: a server core goes quiet for a
//     window, then recovers (internal/ffwd, internal/shenango).
//   - Handler-overrun spikes: a CI handler occasionally runs far past
//     its budget (internal/mtcp, internal/ci/ciruntime's AIMD path).
//
// All methods are nil-receiver safe: a nil *Injector injects nothing,
// so call sites need no fault-enabled branches.
package faults

import "repro/internal/sim"

// Plan declares the fault model for one run. The zero value injects
// nothing. Probabilities are per-event Bernoulli parameters in [0,1].
type Plan struct {
	// Seed roots every derived injector stream. Two runs with equal
	// plans (and equal workloads) are bit-identical.
	Seed uint64

	// Network faults, applied per packet at the NIC.
	DropProb    float64 // packet silently lost before the ring
	CorruptProb float64 // packet delivered but fails its checksum
	ReorderProb float64 // packet delayed so it arrives out of order
	// ReorderDelayCycles is the mean extra delay of a reordered packet
	// (exponential; default 20_000 ≈ 7.7 µs when a reorder fires).
	ReorderDelayCycles int64

	// External-call stall spikes (page faults, slow syscalls), applied
	// per external call or per request.
	StallProb       float64
	StallMeanCycles int64 // mean spike length (exponential; default 50_000)

	// Server stalls: the delegation server / a worker core goes quiet.
	// Onsets are exponentially spaced with the given mean gap; each
	// stall lasts StallCycles. Zero gap disables server stalls.
	ServerStallMeanGapCycles int64
	ServerStallCycles        int64

	// Handler-overrun spikes, applied per handler invocation.
	OverrunProb   float64
	OverrunCycles int64 // mean spike length (exponential; default 30_000)

	// Whole-replica crash/restart: the server process dies, losing all
	// queued and in-flight work, and restarts cold after the down time.
	// Onsets are exponentially spaced with the given mean gap; zero gap
	// disables crashes.
	CrashMeanGapCycles int64
	CrashDownCycles    int64 // down time per crash (default 2_600_000 ≈ 1 ms)

	// Gray failure: the replica stays up and answers health probes, but
	// serves at 1/GraySlowFactor of its normal rate for GraySlowCycles.
	// Onsets are exponentially spaced; zero gap disables gray failures.
	GraySlowMeanGapCycles int64
	GraySlowCycles        int64   // slow-window length (default 13_000_000 ≈ 5 ms)
	GraySlowFactor        float64 // service slowdown multiple (default 8)

	// Correlated zone outages: every replica sharing a failure domain
	// experiences the same seeded window (one injector stream per zone,
	// not per replica), modelling rack/AZ-scale correlated failures.
	// Composable with the per-replica crash and gray classes above —
	// each class draws from its own stream, so enabling one never
	// perturbs another's schedule.

	// Whole-zone crash: every replica in the zone dies at the onset and
	// restarts cold after the down window. Zero gap disables.
	ZoneCrashMeanGapCycles int64
	ZoneCrashDownCycles    int64 // down time per outage (default 2_600_000 ≈ 1 ms)

	// Whole-zone gray-slow: every replica in the zone serves at
	// 1/ZoneGrayFactor speed for ZoneGrayCycles. Zero gap disables.
	ZoneGrayMeanGapCycles int64
	ZoneGrayCycles        int64   // slow-window length (default 13_000_000 ≈ 5 ms)
	ZoneGrayFactor        float64 // service slowdown multiple (default 8)
}

// Enabled reports whether the plan can inject any fault at all.
func (p *Plan) Enabled() bool {
	if p == nil {
		return false
	}
	return p.DropProb > 0 || p.CorruptProb > 0 || p.ReorderProb > 0 ||
		p.StallProb > 0 || p.ServerStallMeanGapCycles > 0 || p.OverrunProb > 0 ||
		p.CrashMeanGapCycles > 0 || p.GraySlowMeanGapCycles > 0 ||
		p.ZoneCrashMeanGapCycles > 0 || p.ZoneGrayMeanGapCycles > 0
}

// Uniform returns a plan that applies rate to every Bernoulli fault
// class and scales server stalls to roughly rate fraction of time
// stalled — the standard sweep point used by `ciexp chaos`.
func Uniform(seed uint64, rate float64) *Plan {
	p := &Plan{
		Seed:        seed,
		DropProb:    rate,
		CorruptProb: rate,
		ReorderProb: rate,
		StallProb:   rate,
		OverrunProb: rate,
	}
	if rate > 0 {
		// Stall for 100k cycles out of every 100k/rate on average.
		p.ServerStallCycles = 100_000
		p.ServerStallMeanGapCycles = int64(float64(p.ServerStallCycles) / rate)
	}
	return p
}

// Counters tallies injected faults, one field per fault class.
type Counters struct {
	Drops        int64
	Corrupts     int64
	Reorders     int64
	Stalls       int64
	StallCycles  int64
	ServerStalls int64
	Overruns     int64
	OverrunCyc   int64
	Crashes      int64
	CrashDownCyc int64
	GraySlows    int64
	GraySlowCyc  int64
	ZoneCrashes  int64
	ZoneDownCyc  int64
	ZoneGrays    int64
	ZoneGrayCyc  int64
}

// Injector draws faults from one subsystem's deterministic stream.
type Injector struct {
	plan Plan
	rng  *sim.RNG
	Counters
}

// fnv64a hashes the subsystem name for stream separation.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// New derives the injector for one subsystem from a plan. A nil or
// all-zero plan yields a nil injector, which injects nothing.
func New(p *Plan, subsystem string) *Injector {
	if !p.Enabled() {
		return nil
	}
	return &Injector{
		plan: *p,
		rng:  sim.NewRNG(p.Seed ^ fnv64a(subsystem) ^ 0x6661756c7473), // "faults"
	}
}

// Drop reports whether to drop the next packet.
func (in *Injector) Drop() bool {
	if in == nil || in.plan.DropProb <= 0 {
		return false
	}
	if in.rng.Float64() < in.plan.DropProb {
		in.Drops++
		return true
	}
	return false
}

// Corrupt reports whether to corrupt the next packet.
func (in *Injector) Corrupt() bool {
	if in == nil || in.plan.CorruptProb <= 0 {
		return false
	}
	if in.rng.Float64() < in.plan.CorruptProb {
		in.Corrupts++
		return true
	}
	return false
}

// Reorder returns the extra delivery delay for the next packet: 0 for
// in-order delivery, positive cycles when a reorder fires.
func (in *Injector) Reorder() int64 {
	if in == nil || in.plan.ReorderProb <= 0 {
		return 0
	}
	if in.rng.Float64() >= in.plan.ReorderProb {
		return 0
	}
	in.Reorders++
	mean := in.plan.ReorderDelayCycles
	if mean <= 0 {
		mean = 20_000
	}
	return in.rng.Exp(float64(mean))
}

// Stall returns the extra cycles of the next external-call stall
// spike, or 0.
func (in *Injector) Stall() int64 {
	if in == nil || in.plan.StallProb <= 0 {
		return 0
	}
	if in.rng.Float64() >= in.plan.StallProb {
		return 0
	}
	mean := in.plan.StallMeanCycles
	if mean <= 0 {
		mean = 50_000
	}
	d := in.rng.Exp(float64(mean))
	in.Stalls++
	in.StallCycles += d
	return d
}

// Overrun returns the extra cycles of the next handler-overrun spike,
// or 0.
func (in *Injector) Overrun() int64 {
	if in == nil || in.plan.OverrunProb <= 0 {
		return 0
	}
	if in.rng.Float64() >= in.plan.OverrunProb {
		return 0
	}
	mean := in.plan.OverrunCycles
	if mean <= 0 {
		mean = 30_000
	}
	d := in.rng.Exp(float64(mean))
	in.Overruns++
	in.OverrunCyc += d
	return d
}

// NextServerStall returns the gap until the next server-stall onset
// and its duration. ok is false when the plan has no server stalls.
func (in *Injector) NextServerStall() (gap, duration int64, ok bool) {
	if in == nil || in.plan.ServerStallMeanGapCycles <= 0 {
		return 0, 0, false
	}
	in.ServerStalls++
	gap = in.rng.Exp(float64(in.plan.ServerStallMeanGapCycles))
	duration = in.plan.ServerStallCycles
	if duration <= 0 {
		duration = 100_000
	}
	return gap, duration, true
}

// NextCrash returns the gap until the next whole-replica crash onset
// and the crash's down time. ok is false when the plan has no crashes.
func (in *Injector) NextCrash() (gap, down int64, ok bool) {
	if in == nil || in.plan.CrashMeanGapCycles <= 0 {
		return 0, 0, false
	}
	in.Crashes++
	gap = in.rng.Exp(float64(in.plan.CrashMeanGapCycles))
	down = in.plan.CrashDownCycles
	if down <= 0 {
		down = 2_600_000
	}
	in.CrashDownCyc += down
	return gap, down, true
}

// NextGraySlow returns the gap until the next gray-failure onset, its
// duration, and the service slowdown factor. ok is false when the plan
// has no gray failures.
func (in *Injector) NextGraySlow() (gap, duration int64, factor float64, ok bool) {
	if in == nil || in.plan.GraySlowMeanGapCycles <= 0 {
		return 0, 0, 1, false
	}
	in.GraySlows++
	gap = in.rng.Exp(float64(in.plan.GraySlowMeanGapCycles))
	duration = in.plan.GraySlowCycles
	if duration <= 0 {
		duration = 13_000_000
	}
	factor = in.plan.GraySlowFactor
	if factor <= 1 {
		factor = 8
	}
	in.GraySlowCyc += duration
	return gap, duration, factor, true
}

// NextZoneCrash returns the gap until the next whole-zone crash onset
// and the outage's down time. ok is false when the plan has no zone
// crashes. The injector is expected to be derived per zone (one shared
// stream per failure domain), so every replica in the zone replays the
// identical correlated schedule.
func (in *Injector) NextZoneCrash() (gap, down int64, ok bool) {
	if in == nil || in.plan.ZoneCrashMeanGapCycles <= 0 {
		return 0, 0, false
	}
	in.ZoneCrashes++
	gap = in.rng.Exp(float64(in.plan.ZoneCrashMeanGapCycles))
	down = in.plan.ZoneCrashDownCycles
	if down <= 0 {
		down = 2_600_000
	}
	in.ZoneDownCyc += down
	return gap, down, true
}

// NextZoneGraySlow returns the gap until the next whole-zone gray
// onset, its duration, and the service slowdown factor. ok is false
// when the plan has no zone gray windows. Like NextZoneCrash, the
// stream is meant to be shared by every replica of one zone.
func (in *Injector) NextZoneGraySlow() (gap, duration int64, factor float64, ok bool) {
	if in == nil || in.plan.ZoneGrayMeanGapCycles <= 0 {
		return 0, 0, 1, false
	}
	in.ZoneGrays++
	gap = in.rng.Exp(float64(in.plan.ZoneGrayMeanGapCycles))
	duration = in.plan.ZoneGrayCycles
	if duration <= 0 {
		duration = 13_000_000
	}
	factor = in.plan.ZoneGrayFactor
	if factor <= 1 {
		factor = 8
	}
	in.ZoneGrayCyc += duration
	return gap, duration, factor, true
}

// ServerStallFrac is the long-run fraction of time a server spends
// stalled under the plan (analytic; used by closed-form models).
func (p *Plan) ServerStallFrac() float64 {
	if p == nil || p.ServerStallMeanGapCycles <= 0 {
		return 0
	}
	d := p.ServerStallCycles
	if d <= 0 {
		d = 100_000
	}
	return float64(d) / float64(d+p.ServerStallMeanGapCycles)
}
