package faults

import "testing"

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	for i := 0; i < 100; i++ {
		if in.Drop() || in.Corrupt() || in.Reorder() != 0 || in.Stall() != 0 || in.Overrun() != 0 {
			t.Fatal("nil injector injected a fault")
		}
	}
	if _, _, ok := in.NextServerStall(); ok {
		t.Error("nil injector produced a server stall")
	}
	if New(nil, "x") != nil || New(&Plan{Seed: 1}, "x") != nil {
		t.Error("empty plans must yield nil injectors")
	}
}

func TestDeterministicStreams(t *testing.T) {
	p := Uniform(42, 0.1)
	a, b := New(p, "mtcp/net"), New(p, "mtcp/net")
	for i := 0; i < 1000; i++ {
		if a.Drop() != b.Drop() || a.Corrupt() != b.Corrupt() || a.Reorder() != b.Reorder() {
			t.Fatal("same plan+subsystem diverged")
		}
	}
	if a.Counters != b.Counters {
		t.Errorf("counters diverged: %+v vs %+v", a.Counters, b.Counters)
	}
}

func TestSubsystemStreamsIndependent(t *testing.T) {
	p := Uniform(42, 0.5)
	a, b := New(p, "alpha"), New(p, "beta")
	same := 0
	for i := 0; i < 200; i++ {
		if a.Drop() == b.Drop() {
			same++
		}
	}
	if same > 180 {
		t.Errorf("streams look correlated: %d/200 agree", same)
	}
}

func TestBernoulliRatesApproximate(t *testing.T) {
	in := New(&Plan{Seed: 7, DropProb: 0.01}, "net")
	n := 100_000
	for i := 0; i < n; i++ {
		in.Drop()
	}
	if in.Drops < 700 || in.Drops > 1300 {
		t.Errorf("drops = %d over %d at p=0.01, want ~1000", in.Drops, n)
	}
}

func TestZeroRatePlanDisabled(t *testing.T) {
	if Uniform(1, 0).Enabled() {
		t.Error("rate-0 plan reports enabled")
	}
	if got := Uniform(1, 0).ServerStallFrac(); got != 0 {
		t.Errorf("stall frac = %v", got)
	}
}

func TestServerStallFrac(t *testing.T) {
	p := Uniform(1, 0.01)
	frac := p.ServerStallFrac()
	if frac < 0.005 || frac > 0.015 {
		t.Errorf("stall frac = %v, want ~0.01", frac)
	}
	in := New(p, "ffwd")
	gap, dur, ok := in.NextServerStall()
	if !ok || gap <= 0 || dur != p.ServerStallCycles {
		t.Errorf("NextServerStall = %d,%d,%v", gap, dur, ok)
	}
}

// crashSchedule walks the injector's crash stream over horizon cycles
// and returns the absolute onset times and total counters.
func crashSchedule(p *Plan, subsystem string, horizon int64) ([]int64, Counters) {
	in := New(p, subsystem)
	var onsets []int64
	var at int64
	for {
		gap, down, ok := in.NextCrash()
		if !ok {
			break
		}
		at += gap
		if at > horizon {
			break
		}
		onsets = append(onsets, at)
		at += down
	}
	if in == nil {
		return onsets, Counters{}
	}
	return onsets, in.Counters
}

func TestCrashAndGraySlowStreams(t *testing.T) {
	p := &Plan{Seed: 9, CrashMeanGapCycles: 1_000_000, GraySlowMeanGapCycles: 2_000_000}
	if !p.Enabled() {
		t.Fatal("crash/gray plan reports disabled")
	}
	in := New(p, "fleet/replica0")
	gap, down, ok := in.NextCrash()
	if !ok || gap <= 0 || down != 2_600_000 {
		t.Errorf("NextCrash = %d,%d,%v (want defaulted 1 ms down time)", gap, down, ok)
	}
	ggap, gdur, factor, ok := in.NextGraySlow()
	if !ok || ggap <= 0 || gdur != 13_000_000 || factor != 8 {
		t.Errorf("NextGraySlow = %d,%d,%v,%v (want defaults)", ggap, gdur, factor, ok)
	}
	if in.Crashes != 1 || in.GraySlows != 1 || in.CrashDownCyc != 2_600_000 {
		t.Errorf("counters = %+v", in.Counters)
	}
	var nilIn *Injector
	if _, _, ok := nilIn.NextCrash(); ok {
		t.Error("nil injector produced a crash")
	}
	if _, _, _, ok := nilIn.NextGraySlow(); ok {
		t.Error("nil injector produced a gray failure")
	}
}

// TestPlanCompositionCommutes pins the stream-separation guarantee the
// fleet layer builds on: composing fault classes into one plan must not
// perturb any other class's stream, so per-class accounting totals are
// identical whether a class runs solo or composed with others — plan
// composition commutes in accounting totals, and is deterministic on
// the same seed.
func TestPlanCompositionCommutes(t *testing.T) {
	const seed, horizon = 77, 50_000_000
	crashOnly := &Plan{Seed: seed, CrashMeanGapCycles: 3_000_000, CrashDownCycles: 1_000_000}
	stallOnly := &Plan{Seed: seed, StallProb: 0.02}
	lossOnly := &Plan{Seed: seed, DropProb: 0.01}
	composed := &Plan{
		Seed:               seed,
		CrashMeanGapCycles: 3_000_000, CrashDownCycles: 1_000_000,
		StallProb: 0.02,
		DropProb:  0.01,
	}

	// Crash class: identical onset schedule and counters, solo vs composed.
	soloOnsets, soloC := crashSchedule(crashOnly, "fleet/replica0", horizon)
	compOnsets, compC := crashSchedule(composed, "fleet/replica0", horizon)
	if len(soloOnsets) == 0 {
		t.Fatal("crash plan produced no onsets over the horizon")
	}
	if len(soloOnsets) != len(compOnsets) {
		t.Fatalf("crash schedule length differs: solo %d vs composed %d", len(soloOnsets), len(compOnsets))
	}
	for i := range soloOnsets {
		if soloOnsets[i] != compOnsets[i] {
			t.Fatalf("crash onset %d differs: solo %d vs composed %d", i, soloOnsets[i], compOnsets[i])
		}
	}
	if soloC.Crashes != compC.Crashes || soloC.CrashDownCyc != compC.CrashDownCyc {
		t.Errorf("crash counters differ: solo %+v vs composed %+v", soloC, compC)
	}

	// Stall class: same per-call decisions and totals on the app stream.
	sIn, cIn := New(stallOnly, "fleet/app"), New(composed, "fleet/app")
	for i := 0; i < 20_000; i++ {
		if sIn.Stall() != cIn.Stall() {
			t.Fatalf("stall decision %d differs solo vs composed", i)
		}
	}
	if sIn.Stalls != cIn.Stalls || sIn.StallCycles != cIn.StallCycles {
		t.Errorf("stall totals differ: solo %+v vs composed %+v", sIn.Counters, cIn.Counters)
	}

	// Loss class: same per-packet decisions and totals on the net stream.
	lIn, clIn := New(lossOnly, "fleet/net"), New(composed, "fleet/net")
	for i := 0; i < 20_000; i++ {
		if lIn.Drop() != clIn.Drop() {
			t.Fatalf("drop decision %d differs solo vs composed", i)
		}
	}
	if lIn.Drops != clIn.Drops {
		t.Errorf("drop totals differ: solo %d vs composed %d", lIn.Drops, clIn.Drops)
	}

	// Determinism: the composed plan reproduces itself exactly.
	again, againC := crashSchedule(composed, "fleet/replica0", horizon)
	if len(again) != len(compOnsets) || againC != compC {
		t.Errorf("composed crash schedule not deterministic across runs")
	}
	for i := range again {
		if again[i] != compOnsets[i] {
			t.Errorf("composed crash onset %d moved between runs", i)
		}
	}
}

// zoneCrashSchedule mirrors crashSchedule for the zone-outage class.
func zoneCrashSchedule(p *Plan, subsystem string, horizon int64) ([]int64, Counters) {
	in := New(p, subsystem)
	var onsets []int64
	var at int64
	for {
		gap, down, ok := in.NextZoneCrash()
		if !ok {
			break
		}
		at += gap
		if at > horizon {
			break
		}
		onsets = append(onsets, at)
		at += down
	}
	if in == nil {
		return onsets, Counters{}
	}
	return onsets, in.Counters
}

// TestZoneOutageClasses pins the correlated zone-outage classes: a
// zone stream is deterministic, shared by name (every replica of one
// zone derives the identical schedule), independent across zones, and
// composable with the per-replica crash classes without perturbing
// either schedule.
func TestZoneOutageClasses(t *testing.T) {
	const seed, horizon = 13, 80_000_000
	zoneOnly := &Plan{Seed: seed, ZoneCrashMeanGapCycles: 7_000_000, ZoneCrashDownCycles: 2_000_000}
	composed := &Plan{
		Seed:                   seed,
		CrashMeanGapCycles:     3_000_000,
		CrashDownCycles:        1_000_000,
		ZoneCrashMeanGapCycles: 7_000_000,
		ZoneCrashDownCycles:    2_000_000,
		ZoneGrayMeanGapCycles:  9_000_000,
	}

	// Zone schedule identical solo vs composed with per-replica crashes.
	solo, soloC := zoneCrashSchedule(zoneOnly, "fleet/zone0", horizon)
	comp, compC := zoneCrashSchedule(composed, "fleet/zone0", horizon)
	if len(solo) == 0 {
		t.Fatal("zone-crash plan produced no onsets over the horizon")
	}
	if len(solo) != len(comp) {
		t.Fatalf("zone schedule length differs: solo %d vs composed %d", len(solo), len(comp))
	}
	for i := range solo {
		if solo[i] != comp[i] {
			t.Fatalf("zone onset %d differs: solo %d vs composed %d", i, solo[i], comp[i])
		}
	}
	if soloC.ZoneCrashes != compC.ZoneCrashes || soloC.ZoneDownCyc != compC.ZoneDownCyc {
		t.Errorf("zone counters differ: solo %+v vs composed %+v", soloC, compC)
	}

	// ...and the per-replica crash schedule is equally undisturbed by
	// the zone classes joining the plan.
	crashOnly := &Plan{Seed: seed, CrashMeanGapCycles: 3_000_000, CrashDownCycles: 1_000_000}
	a, _ := crashSchedule(crashOnly, "fleet/replica0", horizon)
	b, _ := crashSchedule(composed, "fleet/replica0", horizon)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("replica crash schedule perturbed by zone classes: %d vs %d onsets", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replica crash onset %d moved when zone classes were composed in", i)
		}
	}

	// Same zone name -> same schedule (that is what correlates a zone's
	// replicas); different zones draw independent streams.
	again, _ := zoneCrashSchedule(composed, "fleet/zone0", horizon)
	other, _ := zoneCrashSchedule(composed, "fleet/zone1", horizon)
	if len(again) != len(comp) {
		t.Fatal("zone schedule not deterministic across derivations")
	}
	for i := range again {
		if again[i] != comp[i] {
			t.Fatal("zone schedule not deterministic across derivations")
		}
	}
	identical := len(other) == len(comp)
	if identical {
		for i := range other {
			if other[i] != comp[i] {
				identical = false
				break
			}
		}
	}
	if identical {
		t.Error("zone0 and zone1 drew identical outage schedules; streams not separated")
	}

	// Zone gray windows: deterministic, defaulted, counted.
	in := New(composed, "fleet/zone2")
	gap, dur, factor, ok := in.NextZoneGraySlow()
	if !ok || gap <= 0 || dur != 13_000_000 || factor != 8 {
		t.Errorf("zone gray draw = (%d, %d, %g, %t); want defaults 13M cycles at factor 8", gap, dur, factor, ok)
	}
	if in.ZoneGrays != 1 || in.ZoneGrayCyc != 13_000_000 {
		t.Errorf("zone gray counters = %+v", in.Counters)
	}

	// Nil and zone-free plans draw nothing.
	var nilIn *Injector
	if _, _, ok := nilIn.NextZoneCrash(); ok {
		t.Error("nil injector produced a zone crash")
	}
	if _, _, _, ok := nilIn.NextZoneGraySlow(); ok {
		t.Error("nil injector produced a zone gray window")
	}
	if _, _, ok := New(crashOnly, "fleet/zone0").NextZoneCrash(); ok {
		t.Error("zone-free plan produced a zone crash")
	}
	if !(&Plan{Seed: 1, ZoneCrashMeanGapCycles: 1}).Enabled() {
		t.Error("zone-crash-only plan reports disabled")
	}
	if !(&Plan{Seed: 1, ZoneGrayMeanGapCycles: 1}).Enabled() {
		t.Error("zone-gray-only plan reports disabled")
	}
}

func TestSpikesPositiveAndCounted(t *testing.T) {
	in := New(&Plan{Seed: 3, StallProb: 1, OverrunProb: 1}, "vm")
	for i := 0; i < 50; i++ {
		if in.Stall() <= 0 || in.Overrun() <= 0 {
			t.Fatal("probability-1 spike did not fire")
		}
	}
	if in.Stalls != 50 || in.Overruns != 50 {
		t.Errorf("counters = %+v", in.Counters)
	}
	if in.StallCycles <= 0 || in.OverrunCyc <= 0 {
		t.Error("spike cycle totals not accumulated")
	}
}
