package faults

import "testing"

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	for i := 0; i < 100; i++ {
		if in.Drop() || in.Corrupt() || in.Reorder() != 0 || in.Stall() != 0 || in.Overrun() != 0 {
			t.Fatal("nil injector injected a fault")
		}
	}
	if _, _, ok := in.NextServerStall(); ok {
		t.Error("nil injector produced a server stall")
	}
	if New(nil, "x") != nil || New(&Plan{Seed: 1}, "x") != nil {
		t.Error("empty plans must yield nil injectors")
	}
}

func TestDeterministicStreams(t *testing.T) {
	p := Uniform(42, 0.1)
	a, b := New(p, "mtcp/net"), New(p, "mtcp/net")
	for i := 0; i < 1000; i++ {
		if a.Drop() != b.Drop() || a.Corrupt() != b.Corrupt() || a.Reorder() != b.Reorder() {
			t.Fatal("same plan+subsystem diverged")
		}
	}
	if a.Counters != b.Counters {
		t.Errorf("counters diverged: %+v vs %+v", a.Counters, b.Counters)
	}
}

func TestSubsystemStreamsIndependent(t *testing.T) {
	p := Uniform(42, 0.5)
	a, b := New(p, "alpha"), New(p, "beta")
	same := 0
	for i := 0; i < 200; i++ {
		if a.Drop() == b.Drop() {
			same++
		}
	}
	if same > 180 {
		t.Errorf("streams look correlated: %d/200 agree", same)
	}
}

func TestBernoulliRatesApproximate(t *testing.T) {
	in := New(&Plan{Seed: 7, DropProb: 0.01}, "net")
	n := 100_000
	for i := 0; i < n; i++ {
		in.Drop()
	}
	if in.Drops < 700 || in.Drops > 1300 {
		t.Errorf("drops = %d over %d at p=0.01, want ~1000", in.Drops, n)
	}
}

func TestZeroRatePlanDisabled(t *testing.T) {
	if Uniform(1, 0).Enabled() {
		t.Error("rate-0 plan reports enabled")
	}
	if got := Uniform(1, 0).ServerStallFrac(); got != 0 {
		t.Errorf("stall frac = %v", got)
	}
}

func TestServerStallFrac(t *testing.T) {
	p := Uniform(1, 0.01)
	frac := p.ServerStallFrac()
	if frac < 0.005 || frac > 0.015 {
		t.Errorf("stall frac = %v, want ~0.01", frac)
	}
	in := New(p, "ffwd")
	gap, dur, ok := in.NextServerStall()
	if !ok || gap <= 0 || dur != p.ServerStallCycles {
		t.Errorf("NextServerStall = %d,%d,%v", gap, dur, ok)
	}
}

func TestSpikesPositiveAndCounted(t *testing.T) {
	in := New(&Plan{Seed: 3, StallProb: 1, OverrunProb: 1}, "vm")
	for i := 0; i < 50; i++ {
		if in.Stall() <= 0 || in.Overrun() <= 0 {
			t.Fatal("probability-1 spike did not fire")
		}
	}
	if in.Stalls != 50 || in.Overruns != 50 {
		t.Errorf("counters = %+v", in.Counters)
	}
	if in.StallCycles <= 0 || in.OverrunCyc <= 0 {
		t.Error("spike cycle totals not accumulated")
	}
}
