package interleave

import (
	"errors"
	"fmt"

	"repro/internal/faults"
	"repro/internal/ir"
	"repro/internal/vm"
)

// AccessKind distinguishes the three memory operations the VM taps.
type AccessKind uint8

const (
	KindLoad AccessKind = iota
	KindStore
	KindAdd
)

func (k AccessKind) String() string {
	switch k {
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	default:
		return "aadd"
	}
}

// Access is one recorded memory operation, tagged with the epoch it
// executed in: epoch 0 is main code, epoch k > 0 is the k'th handler
// invocation of the run. Site is the main-context probe ordinal the
// handler fired at (0 for main-epoch accesses).
type Access struct {
	Epoch     int
	Site      int64
	Fn, Block string
	Kind      AccessKind
	Addr      int64
	// Val is the value read (loads), written (stores) or committed
	// (adds: old value + addend).
	Val int64
	// Add is the addend for KindAdd.
	Add int64
	// Protected marks a main-epoch access executed while no handler
	// could fire (inside a ci_disable region): ordered with respect to
	// every handler epoch by construction.
	Protected bool
}

// Run is one recorded execution of the module.
type Run struct {
	// Schedule is the forced-fire site list this run executed under
	// (nil for the cadence record run and the fire-free baseline).
	Schedule []int64
	// Ret is the entry function's return value.
	Ret int64
	// Err is the main run's error, nil on clean completion.
	Err error
	// HandlerErr is the first error a handler's IR body raised
	// (watchdog trips included); handler closures cannot propagate
	// errors through the CI runtime, so the recorder stashes them.
	HandlerErr error
	// Accesses is the tagged access trace (only when recording).
	Accesses []Access
	// Mem is the final memory image.
	Mem []int64
	// Fires counts handler invocations delivered.
	Fires int
	// Sites counts main-context probe sites executed.
	Sites int64
	// Feasible lists the sites at which a forced fire could have been
	// delivered (only in enumeration mode).
	Feasible []int64
}

// fault returns the run's first hard error: a handler-body error wins
// over the main error (the main error is usually its consequence).
func (r *Run) fault() error {
	if r.HandlerErr != nil {
		return fmt.Errorf("handler %w", r.HandlerErr)
	}
	return r.Err
}

// inconclusive reports whether the run died on the step budget — a
// harness artifact, never a finding (the sanitize oracle convention).
func (r *Run) inconclusive() bool {
	return errors.Is(r.Err, vm.ErrStepBudget) || errors.Is(r.HandlerErr, vm.ErrStepBudget)
}

// execMode selects what execute records and how handlers fire.
type execMode int

const (
	// execCadence fires the handler on its registered cadence and
	// records the access trace — the Record stage.
	execCadence execMode = iota
	// execEnumerate fires nothing and records only the feasible-site
	// list — the Explore stage's site census.
	execEnumerate
	// execSchedule fires the handler exactly at the scheduled sites
	// (forced fires) and records the access trace.
	execSchedule
)

// neverCycles is a cadence interval no run can reach.
const neverCycles = int64(1) << 60

// execute performs one run of the instrumented module under the given
// mode. schedule (execSchedule only) lists forced-fire sites in
// ascending order; a site listed twice fires the handler twice there.
// The module is cloned per run, so executions are independent and safe
// to shard across engine workers.
func execute(prog *ir.Module, opts Options, mode execMode, schedule []int64) *Run {
	mod := prog.Clone()
	machine := vm.New(mod, nil, 1)
	machine.LimitInstrs = opts.LimitInstrs
	machine.MaxHandlerCycles = opts.MaxHandlerCycles
	th := machine.NewThread(0)

	run := &Run{Schedule: schedule}
	interval := opts.IntervalCycles
	if mode != execCadence {
		interval = neverCycles
	}
	inj := faults.New(opts.FaultPlan, "interleave/handler")
	hFn := mod.FuncByName(opts.Handler)

	// epoch/curSite tag accesses: the handler closure opens an epoch
	// for the duration of its IR body. Handlers cannot nest (the CI
	// runtime holds the per-handler disable during fire), so a plain
	// save-less reset is sound.
	epoch := 0
	curSite := int64(0)
	th.RT.RegisterCI(interval, func(irDelta uint64) {
		run.Fires++
		epoch = run.Fires
		if d := inj.Stall() + inj.Overrun(); d > 0 {
			th.Charge(d)
		}
		var args []int64
		if hFn.NumParams >= 1 {
			args = make([]int64, hFn.NumParams)
			args[0] = int64(irDelta)
		}
		if _, err := th.CallHandler(opts.Handler, args...); err != nil && run.HandlerErr == nil {
			run.HandlerErr = err
		}
		epoch = 0
	})

	schedIdx := 0
	th.OnProbe = func() int {
		run.Sites++
		curSite = run.Sites
		switch mode {
		case execEnumerate:
			if th.RT.CanFire() {
				run.Feasible = append(run.Feasible, run.Sites)
			}
			return 0
		case execSchedule:
			n := 0
			for schedIdx < len(schedule) && schedule[schedIdx] == run.Sites {
				n++
				schedIdx++
			}
			return n
		}
		return 0
	}

	if mode != execEnumerate {
		th.OnLoad = func(fn, block string, addr, val int64) {
			run.Accesses = append(run.Accesses, Access{
				Epoch: epoch, Site: site(epoch, curSite), Fn: fn, Block: block,
				Kind: KindLoad, Addr: addr, Val: val,
				Protected: epoch == 0 && !th.RT.CanFire(),
			})
		}
		th.OnStore = func(fn, block string, addr, val int64) {
			run.Accesses = append(run.Accesses, Access{
				Epoch: epoch, Site: site(epoch, curSite), Fn: fn, Block: block,
				Kind: KindStore, Addr: addr, Val: val,
				Protected: epoch == 0 && !th.RT.CanFire(),
			})
		}
		th.OnAtomic = func(fn, block string, addr, old, add int64) {
			run.Accesses = append(run.Accesses, Access{
				Epoch: epoch, Site: site(epoch, curSite), Fn: fn, Block: block,
				Kind: KindAdd, Addr: addr, Val: old + add, Add: add,
				Protected: epoch == 0 && !th.RT.CanFire(),
			})
		}
	}

	args := opts.Args
	entry := mod.FuncByName(opts.Entry)
	switch {
	case entry.NumParams == 0:
		args = nil
	case len(args) != entry.NumParams:
		padded := make([]int64, entry.NumParams)
		copy(padded, args)
		args = padded
	}
	run.Ret, run.Err = th.Run(opts.Entry, args...)
	run.Mem = append([]int64(nil), machine.Mem...)
	return run
}

// site attributes an access to the probe site its epoch began at:
// handler accesses carry the fire site, main accesses carry 0 (main is
// one epoch spanning the whole run).
func site(epoch int, cur int64) int64 {
	if epoch > 0 {
		return cur
	}
	return 0
}
