package interleave

import (
	"repro/internal/engine"
	"repro/internal/ir"
	"repro/internal/sanitize"
)

// ShrinkRace reduces src to a minimal module whose verifier report
// still fails (an unclassified race or a non-commutative schedule)
// under opts — the Shrink stage. It reuses the sanitize ddmin reducer;
// candidates that drop the entry or handler function, fail to compile,
// or come back clean are rejected automatically, so the reduction
// converges on the smallest module that still exhibits the hazard.
// Callers typically tighten opts for speed (ContextBound 1, small
// MaxSchedules) before shrinking, then pin the result with
// sanitize.SaveRepro under testdata/repro/.
func ShrinkRace(src *ir.Module, eng *engine.Engine, opts Options) *ir.Module {
	pred := func(m *ir.Module) bool {
		o := opts.withDefaults()
		if m.FuncByName(o.Handler) == nil || m.FuncByName(o.Entry) == nil {
			return false
		}
		rep, err := VerifyHandlers(m, eng, opts)
		return err == nil && rep.Err() != nil
	}
	return sanitize.Reduce(src, opts.withDefaults().Entry, pred)
}
