package interleave

import "sort"

// The Detect stage. Inline handlers give the happens-before relation a
// degenerate but useful shape: every access within one epoch is
// totally ordered, a handler epoch is atomic with respect to main
// (it runs to completion at one probe site), and the only cross-epoch
// ordering primitive is ci_disable/ci_enable — a main access executed
// while no handler can fire is ordered with respect to every handler
// epoch. A shared address races when the handler epoch's placement
// relative to unordered main accesses could matter; classification
// separates the placements that provably cannot matter.

// Class is the verdict for one shared address.
type Class uint8

const (
	// ClassReadShared: both sides only read the address.
	ClassReadShared Class = iota
	// ClassObserved: the handler only reads; main may write. Reads of
	// a single word are indivisible in this VM, so the handler observes
	// a clean snapshot — benign unless the handler's own writes
	// elsewhere disagree, which the commutativity oracle catches.
	ClassObserved
	// ClassAtomic: every write on both sides is an atomic add — a
	// commutative reduction whose final value is placement-independent.
	ClassAtomic
	// ClassSameValue: every handler write leaves the value unchanged
	// (a store of the current value, or an add of zero); the handler is
	// effectively a reader.
	ClassSameValue
	// ClassProtected: every main access runs under ci_disable, so no
	// handler epoch can interleave with main's use of the address.
	ClassProtected
	// ClassAnnotated: racy by the rules above, but explicitly
	// allow-listed via Options.Benign with a justification.
	ClassAnnotated
	// ClassRacy: an unclassified handler/main race — the verifier's
	// finding.
	ClassRacy
)

func (c Class) String() string {
	switch c {
	case ClassReadShared:
		return "read-shared"
	case ClassObserved:
		return "observed"
	case ClassAtomic:
		return "atomic"
	case ClassSameValue:
		return "same-value"
	case ClassProtected:
		return "protected"
	case ClassAnnotated:
		return "annotated"
	default:
		return "RACY"
	}
}

// AddrReport is the classified verdict for one shared address.
type AddrReport struct {
	Addr  int64
	Class Class
	// Note carries the benign justification for ClassAnnotated.
	Note string
	// Access counts aggregated over every folded run (reads include
	// the read half of nothing — adds count as writes).
	MainReads, MainWrites       int
	HandlerReads, HandlerWrites int
	// MainSite / HandlerSite are "fn/block" exemplars of the first
	// recorded access on each side.
	MainSite, HandlerSite string
}

// addrState accumulates per-address evidence across runs.
type addrState struct {
	mainReads, mainWrites int
	hReads, hWrites       int
	mainAccess, hAccess   bool
	// mainPlain / hPlain: any non-atomic write on that side.
	mainPlain, hPlain bool
	// hChanging: any handler write that changed the value.
	hChanging bool
	// mainUnprotected: any main access outside a ci_disable region.
	mainUnprotected bool
	mainSite, hSite string
}

// accumulator folds run traces into per-address states. Folding order
// is deterministic (record run first, then schedules in index order),
// so exemplar sites and counts are reproducible at any worker count.
type accumulator struct {
	states map[int64]*addrState
}

func newAccumulator() *accumulator {
	return &accumulator{states: make(map[int64]*addrState)}
}

// fold merges one run's access trace. A per-run shadow memory (all
// words start at zero) tracks the value each address held before every
// write, which is what tells a same-value handler store apart from a
// clobbering one.
func (a *accumulator) fold(r *Run) {
	shadow := make(map[int64]int64)
	for i := range r.Accesses {
		ac := &r.Accesses[i]
		s := a.states[ac.Addr]
		if s == nil {
			s = &addrState{}
			a.states[ac.Addr] = s
		}
		site := ac.Fn + "/" + ac.Block
		if ac.Epoch == 0 {
			s.mainAccess = true
			if !ac.Protected {
				s.mainUnprotected = true
			}
			if s.mainSite == "" {
				s.mainSite = site
			}
			if ac.Kind == KindLoad {
				s.mainReads++
			} else {
				s.mainWrites++
				if ac.Kind == KindStore {
					s.mainPlain = true
				}
			}
		} else {
			s.hAccess = true
			if s.hSite == "" {
				s.hSite = site
			}
			if ac.Kind == KindLoad {
				s.hReads++
			} else {
				s.hWrites++
				if ac.Kind == KindStore {
					s.hPlain = true
				}
				if ac.Val != shadow[ac.Addr] {
					s.hChanging = true
				}
			}
		}
		if ac.Kind != KindLoad {
			shadow[ac.Addr] = ac.Val
		}
	}
}

// handlerWritten returns the set of addresses any handler epoch wrote
// in run r — the words excluded from final-memory equivalence.
func handlerWritten(r *Run) map[int64]bool {
	out := make(map[int64]bool)
	for i := range r.Accesses {
		if r.Accesses[i].Epoch > 0 && r.Accesses[i].Kind != KindLoad {
			out[r.Accesses[i].Addr] = true
		}
	}
	return out
}

// merge folds another accumulator (a worker-local fold) into a.
func (a *accumulator) merge(b *accumulator) {
	for addr, bs := range b.states {
		s := a.states[addr]
		if s == nil {
			cp := *bs
			a.states[addr] = &cp
			continue
		}
		s.mainReads += bs.mainReads
		s.mainWrites += bs.mainWrites
		s.hReads += bs.hReads
		s.hWrites += bs.hWrites
		s.mainAccess = s.mainAccess || bs.mainAccess
		s.hAccess = s.hAccess || bs.hAccess
		s.mainPlain = s.mainPlain || bs.mainPlain
		s.hPlain = s.hPlain || bs.hPlain
		s.hChanging = s.hChanging || bs.hChanging
		s.mainUnprotected = s.mainUnprotected || bs.mainUnprotected
		if s.mainSite == "" {
			s.mainSite = bs.mainSite
		}
		if s.hSite == "" {
			s.hSite = bs.hSite
		}
	}
}

// classify renders the accumulated evidence into sorted per-address
// verdicts. Only addresses touched by both sides appear: an address
// one side never sees cannot race.
func (a *accumulator) classify(benign map[int64]string) []AddrReport {
	var out []AddrReport
	for addr, s := range a.states {
		if !s.mainAccess || !s.hAccess {
			continue
		}
		rep := AddrReport{
			Addr:          addr,
			MainReads:     s.mainReads,
			MainWrites:    s.mainWrites,
			HandlerReads:  s.hReads,
			HandlerWrites: s.hWrites,
			MainSite:      s.mainSite,
			HandlerSite:   s.hSite,
		}
		switch {
		case s.mainWrites == 0 && s.hWrites == 0:
			rep.Class = ClassReadShared
		case s.hWrites == 0:
			rep.Class = ClassObserved
		case !s.mainPlain && !s.hPlain:
			rep.Class = ClassAtomic
		case !s.hChanging:
			rep.Class = ClassSameValue
		case !s.mainUnprotected:
			rep.Class = ClassProtected
		default:
			if note, ok := benign[addr]; ok {
				rep.Class = ClassAnnotated
				rep.Note = note
			} else {
				rep.Class = ClassRacy
			}
		}
		out = append(out, rep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}
