package interleave

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// WriteTable renders the race table for one report — the cidump
// -interleave output and the golden-file format. Every line is a pure
// function of the report, which is itself deterministic at any worker
// count, so the table can be golden-tested byte-for-byte.
func (r *Report) WriteTable(w io.Writer) error {
	fmt.Fprintf(w, "interleave: @%s vs @%s (cadence fires %d)\n", r.Entry, r.Handler, r.Fires)
	fmt.Fprintf(w, "sites: %d feasible of %d probe sites; bound %d: %d schedules (%d sampled out, %d pair-truncated, %d undelivered, %d inconclusive)\n",
		r.FeasibleSites, r.TotalSites, r.Bound, r.Schedules, r.Sampled, r.PairTruncated, r.Undelivered, r.Inconclusive)
	if len(r.Addrs) == 0 {
		fmt.Fprintln(w, "shared addresses: none")
	} else {
		tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
		fmt.Fprintln(tw, "  addr\tclass\tmain r/w\thandler r/w\tmain site\thandler site\tnote")
		for _, a := range r.Addrs {
			fmt.Fprintf(tw, "  %d\t%s\t%d/%d\t%d/%d\t%s\t%s\t%s\n",
				a.Addr, a.Class, a.MainReads, a.MainWrites,
				a.HandlerReads, a.HandlerWrites, a.MainSite, a.HandlerSite, a.Note)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	if len(r.NonCommute) == 0 {
		fmt.Fprintln(w, "non-commutative schedules: none")
	} else {
		fmt.Fprintf(w, "non-commutative schedules: %d\n", len(r.NonCommute))
		for _, nc := range r.NonCommute {
			if nc.Schedule == nil {
				fmt.Fprintf(w, "  cadence\t%s\n", nc.Detail)
				continue
			}
			fmt.Fprintf(w, "  fire@%v\t%s\n", nc.Schedule, nc.Detail)
		}
	}
	if err := r.Err(); err != nil {
		fmt.Fprintf(w, "verdict: FAIL (%v)\n", err)
	} else {
		fmt.Fprintln(w, "verdict: OK")
	}
	return nil
}
