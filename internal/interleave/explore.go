package interleave

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/ir"
	"repro/internal/sim"
)

// The Explore stage: iterative context bounding over fire-site
// choices. The enumeration run counts main-context probe sites and
// marks which are feasible (a fire could be delivered — ci_disable
// regions are infeasible by construction, because the runtime's
// FireAll respects the same eligibility rules as cadence fires). Then
// the module is re-run once per schedule: every feasible single site
// (context bound 1), then every multiset of 2..ContextBound sites.
// Each delivered run is compared against the fire-free baseline;
// equal observable outcomes at every placement prove the handler
// commutes with main.
//
// Forced fires can perturb control flow: a schedule planned from the
// enumeration run's site ordinals may become undeliverable when an
// earlier fire changes main's path (fewer probe executions, or the
// target site landing inside a disable region). Such runs are counted
// as Undelivered and excluded from equivalence — standard practice in
// stateless model checking without replay trees — but their traces
// still feed race detection.

// explore enumerates, runs the baseline, shards the schedules over the
// engine pool, and fills rep. Worker-local accumulator folds are
// merged in schedule index order, so the report is byte-identical at
// any worker count.
func explore(prog *ir.Module, eng *engine.Engine, opts Options, rep *Report, acc *accumulator) error {
	enum := execute(prog, opts, execEnumerate, nil)
	if err := enum.fault(); err != nil {
		return fmt.Errorf("interleave: enumeration run: %w", err)
	}
	rep.TotalSites = enum.Sites
	rep.FeasibleSites = len(enum.Feasible)

	base := execute(prog, opts, execSchedule, nil)
	if err := base.fault(); err != nil {
		return fmt.Errorf("interleave: baseline run: %w", err)
	}
	if opts.CheckRun != nil {
		if err := opts.CheckRun(base); err != nil {
			return fmt.Errorf("interleave: fire-free baseline violates CheckRun: %w", err)
		}
	}
	acc.fold(base)
	baseDig := digestOf(base)

	schedules, sampled, truncated := buildSchedules(enum.Feasible, opts)
	rep.Schedules = len(schedules)
	rep.Sampled = sampled
	rep.PairTruncated = truncated

	type cell struct {
		acc          *accumulator
		delivered    bool
		inconclusive bool
		detail       string
	}
	results, errs := engine.Map(eng.Pool, len(schedules), func(i int) (cell, error) {
		r := execute(prog, opts, execSchedule, schedules[i])
		c := cell{acc: newAccumulator()}
		if r.inconclusive() {
			c.inconclusive = true
			return c, nil
		}
		if err := r.fault(); err != nil {
			// A forced placement that crashes the program is itself a
			// finding: no cadence could be proven to avoid it.
			c.detail = "run failed: " + err.Error()
			return c, nil
		}
		c.acc.fold(r)
		if r.Fires != len(schedules[i]) {
			return c, nil // undelivered: detection evidence only
		}
		c.delivered = true
		c.detail = compare(baseDig, digestOf(r), opts)
		if c.detail == "" && opts.CheckRun != nil {
			if err := opts.CheckRun(r); err != nil {
				c.detail = "invariant: " + err.Error()
			}
		}
		return c, nil
	})
	if err := engine.FirstError(errs); err != nil {
		return err
	}
	for i, c := range results {
		if c.acc != nil {
			acc.merge(c.acc)
		}
		switch {
		case c.inconclusive:
			rep.Inconclusive++
		case c.detail != "":
			rep.NonCommute = append(rep.NonCommute, NonCommute{Schedule: schedules[i], Detail: c.detail})
		case !c.delivered:
			rep.Undelivered++
		}
	}
	return nil
}

// buildSchedules turns the feasible-site list into the schedule set:
// every single site, then every multiset of 2..ContextBound sites drawn
// from the (possibly stride-thinned) pair-site subset. sampled counts
// schedules dropped by MaxSchedules; truncated counts feasible sites
// excluded from multi-fire enumeration. Both are reported — the
// verifier never caps coverage silently.
func buildSchedules(feasible []int64, opts Options) (schedules [][]int64, sampled, truncated int) {
	singles := feasible
	if len(singles) > opts.MaxSchedules {
		sampled += len(singles) - opts.MaxSchedules
		singles = strideSample(singles, opts.MaxSchedules)
	}
	for _, s := range singles {
		schedules = append(schedules, []int64{s})
	}
	if opts.ContextBound < 2 || len(feasible) == 0 {
		return
	}
	pairSites := feasible
	if len(pairSites) > opts.MaxPairSites {
		truncated = len(pairSites) - opts.MaxPairSites
		pairSites = strideSample(pairSites, opts.MaxPairSites)
	}
	var multi [][]int64
	for k := 2; k <= opts.ContextBound; k++ {
		combosWithRepetition(pairSites, k, func(c []int64) {
			multi = append(multi, append([]int64(nil), c...))
		})
	}
	if len(multi) > opts.MaxSchedules {
		// Deterministic thinning: seeded Fisher–Yates, keep the head,
		// restore canonical order so downstream output is stable.
		rng := sim.NewRNG(opts.Seed)
		for i := len(multi) - 1; i > 0; i-- {
			j := rng.Intn(int64(i + 1))
			multi[i], multi[j] = multi[j], multi[i]
		}
		sampled += len(multi) - opts.MaxSchedules
		multi = multi[:opts.MaxSchedules]
		sort.Slice(multi, func(i, j int) bool { return scheduleLess(multi[i], multi[j]) })
	}
	schedules = append(schedules, multi...)
	return
}

// scheduleLess orders schedules by length, then lexicographically.
func scheduleLess(a, b []int64) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// combosWithRepetition emits every non-decreasing k-tuple over sites.
// The buffer passed to emit is reused between calls.
func combosWithRepetition(sites []int64, k int, emit func([]int64)) {
	cur := make([]int64, k)
	var rec func(pos, start int)
	rec = func(pos, start int) {
		if pos == k {
			emit(cur)
			return
		}
		for i := start; i < len(sites); i++ {
			cur[pos] = sites[i]
			rec(pos+1, i)
		}
	}
	rec(0, 0)
}

// strideSample picks m elements evenly across xs, always including the
// first and last. Only called with len(xs) > m >= 2, where the stride
// exceeds one and the picked indices are strictly increasing.
func strideSample(xs []int64, m int) []int64 {
	if m >= len(xs) {
		return xs
	}
	if m < 2 {
		m = 2
	}
	out := make([]int64, 0, m)
	n := len(xs)
	for i := 0; i < m; i++ {
		out = append(out, xs[i*(n-1)/(m-1)])
	}
	return out
}

// runDigest is the observable outcome of one run, for commutativity
// comparison: the return value, main's plain-store stream in order,
// main's atomic-add deltas summed per address (a commutative
// reduction compares by sum, not by order-dependent committed values),
// and final memory restricted to words no handler epoch wrote.
type runDigest struct {
	ret      int64
	stores   []int64 // (addr, val) pairs, main-epoch plain stores in order
	addSums  map[int64]int64
	mem      []int64
	hWritten map[int64]bool
}

func digestOf(r *Run) *runDigest {
	d := &runDigest{ret: r.Ret, addSums: make(map[int64]int64), mem: r.Mem, hWritten: handlerWritten(r)}
	for i := range r.Accesses {
		a := &r.Accesses[i]
		if a.Epoch != 0 {
			continue
		}
		switch a.Kind {
		case KindStore:
			d.stores = append(d.stores, a.Addr, a.Val)
		case KindAdd:
			d.addSums[a.Addr] += a.Add
		}
	}
	return d
}

// compare reports the first divergence between a delivered run and the
// fire-free baseline, or "" when equivalent. Details are deterministic
// (sorted iteration) so reports are byte-identical across runs.
func compare(base, got *runDigest, opts Options) string {
	if got.ret != base.ret {
		return fmt.Sprintf("return value %d, baseline %d", got.ret, base.ret)
	}
	if opts.RetOnly {
		return ""
	}
	if len(got.stores) != len(base.stores) {
		return fmt.Sprintf("main stores: %d, baseline %d", len(got.stores)/2, len(base.stores)/2)
	}
	for i := 0; i < len(got.stores); i += 2 {
		if got.stores[i] != base.stores[i] || got.stores[i+1] != base.stores[i+1] {
			return fmt.Sprintf("main store #%d: mem[%d]=%d, baseline mem[%d]=%d",
				i/2, got.stores[i], got.stores[i+1], base.stores[i], base.stores[i+1])
		}
	}
	for _, addr := range sortedKeys(got.addSums, base.addSums) {
		if got.addSums[addr] != base.addSums[addr] {
			return fmt.Sprintf("main atomic delta at mem[%d]: %d, baseline %d",
				addr, got.addSums[addr], base.addSums[addr])
		}
	}
	n := len(got.mem)
	if len(base.mem) < n {
		n = len(base.mem)
	}
	for addr := 0; addr < n; addr++ {
		if got.hWritten[int64(addr)] || base.hWritten[int64(addr)] {
			continue
		}
		if got.mem[addr] != base.mem[addr] {
			return fmt.Sprintf("final mem[%d] = %d, baseline %d", addr, got.mem[addr], base.mem[addr])
		}
	}
	return ""
}

func sortedKeys(ms ...map[int64]int64) []int64 {
	seen := make(map[int64]bool)
	var out []int64
	for _, m := range ms {
		for k := range m {
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
