package interleave

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/ir"
	"repro/internal/vm"
)

// Each classification scenario is a tiny module shaped around one
// sharing pattern; VerifyHandlers must land every shared address in
// the expected class and agree with the commutativity oracle.

func verify(t *testing.T, src string, opts Options) *Report {
	t.Helper()
	m := ir.MustParse(src)
	rep, err := VerifyHandlers(m, engine.Serial(), opts)
	if err != nil {
		t.Fatalf("VerifyHandlers: %v", err)
	}
	return rep
}

func classOf(t *testing.T, rep *Report, addr int64) Class {
	t.Helper()
	for _, a := range rep.Addrs {
		if a.Addr == addr {
			return a.Class
		}
	}
	t.Fatalf("addr %d not in report (addrs: %+v)", addr, rep.Addrs)
	return 0
}

// mainLoop wraps a per-iteration body into a bounded main function.
const mainHead = `
mem 64
func @main(%n) {
entry:
  %acc = and %n, 63
  %i = mov 0
  jmp head
head:
  %c = lt %i, 40
  br %c, body, exit
body:
`
const mainTail = `
  %i = add %i, 1
  jmp head
exit:
  ret %acc
}
`

func TestClassAtomicCounter(t *testing.T) {
	// Handler and main both aadd the same counter; main also reads it.
	// The final value is placement-independent: benign.
	src := mainHead + `
  %one = mov 1
  %old = aadd _, 0, %one
  %v = load _, 0
  %acc = add %acc, %v
  %acc = and %acc, 1023
` + mainTail + `
func @handler() {
entry:
  %one = mov 1
  %old = aadd _, 0, %one
  ret %old
}
`
	rep := verify(t, src, Options{RetOnly: true})
	if got := classOf(t, rep, 0); got != ClassAtomic {
		t.Errorf("counter class = %v, want atomic", got)
	}
	if rep.FeasibleSites == 0 || rep.Schedules == 0 {
		t.Errorf("exploration did not run: %+v", rep)
	}
	// Main reads the counter into its accumulator, so full equivalence
	// would rightly flag placement-dependence; RetOnly is also
	// placement-dependent here (acc folds the counter), so expect the
	// return value to differ — unless main's read is protected. This
	// scenario only pins the detection class.
}

func TestClassObservedAndCommutes(t *testing.T) {
	// Main writes a progress word; the handler only reads it and
	// tallies privately. Fully commutative: main's observable behavior
	// cannot depend on fire placement.
	src := mainHead + `
  %acc = add %acc, 3
  %acc = and %acc, 1023
  store _, 1, %acc
` + mainTail + `
func @handler() {
entry:
  %v = load _, 1
  %o = aadd _, 9, %v
  ret %v
}
`
	rep := verify(t, src, Options{})
	if got := classOf(t, rep, 1); got != ClassObserved {
		t.Errorf("progress word class = %v, want observed", got)
	}
	if len(rep.NonCommute) != 0 {
		t.Errorf("observed-only handler flagged non-commutative: %+v", rep.NonCommute)
	}
	if err := rep.Err(); err != nil {
		t.Errorf("Err = %v, want nil", err)
	}
}

func TestClassSameValueStore(t *testing.T) {
	// The handler re-asserts a flag main set at startup — stores that
	// never change the value.
	src := `
mem 64
func @main(%n) {
entry:
  %one = mov 1
  store _, 2, %one
  %acc = and %n, 63
  %i = mov 0
  jmp head
head:
  %c = lt %i, 40
  br %c, body, exit
body:
  %acc = add %acc, 3
  %acc = and %acc, 1023
  %i = add %i, 1
  jmp head
exit:
  ret %acc
}
func @handler() {
entry:
  %one = mov 1
  store _, 2, %one
  ret %one
}
`
	rep := verify(t, src, Options{})
	if got := classOf(t, rep, 2); got != ClassSameValue {
		t.Errorf("flag class = %v, want same-value", got)
	}
	if err := rep.Err(); err != nil {
		t.Errorf("Err = %v, want nil", err)
	}
}

func TestClassProtectedByCiDisable(t *testing.T) {
	// Main touches the shared word only inside ci_disable regions; the
	// handler plain-stores it freely. Every main access is ordered.
	src := `
mem 64
extern @ci_disable cost 4
extern @ci_enable cost 4
func @main(%n) {
entry:
  %ciid = mov 0
  %acc = and %n, 63
  %i = mov 0
  jmp head
head:
  %c = lt %i, 40
  br %c, body, exit
body:
  extcall @ci_disable(%ciid)
  %v = load _, 3
  %acc = add %acc, %v
  %acc = and %acc, 1023
  store _, 3, %acc
  extcall @ci_enable(%ciid)
  %i = add %i, 1
  jmp head
exit:
  ret %acc
}
func @handler(%ir) {
entry:
  store _, 3, %ir
  ret %ir
}
`
	rep := verify(t, src, Options{RetOnly: true, CheckRun: func(r *Run) error { return nil }})
	if got := classOf(t, rep, 3); got != ClassProtected {
		t.Errorf("word class = %v, want protected", got)
	}
}

func TestClassRacyAndNonCommute(t *testing.T) {
	// The textbook lost-update: main read-modify-writes a word with
	// plain ops; the handler stores a changing value into it. Detection
	// must flag the address and exploration must find placements where
	// main's outcome differs.
	src := mainHead + `
  %v = load _, 4
  %v = add %v, 1
  store _, 4, %v
  %acc = add %acc, %v
  %acc = and %acc, 1023
` + mainTail + `
func @handler(%ir) {
entry:
  store _, 4, %ir
  ret %ir
}
`
	rep := verify(t, src, Options{})
	if got := classOf(t, rep, 4); got != ClassRacy {
		t.Errorf("word class = %v, want RACY", got)
	}
	if len(rep.NonCommute) == 0 {
		t.Error("lost-update module explored as commutative")
	}
	if err := rep.Err(); err == nil || !errors.Is(err, ErrRace) {
		t.Errorf("Err = %v, want ErrRace", err)
	}
	if len(rep.Unclassified()) == 0 {
		t.Error("Unclassified() empty for a racy module")
	}
}

func TestBenignAnnotationReclassifies(t *testing.T) {
	// Same hazard as above, but main never reads the word back: the
	// final value is handler-owned and main's stream is unaffected. The
	// race is real but intentionally benign; the annotation must move
	// it out of Err while keeping it visible in the table.
	src := mainHead + `
  %acc = add %acc, 3
  %acc = and %acc, 1023
  store _, 5, %acc
` + mainTail + `
func @handler(%ir) {
entry:
  store _, 5, %ir
  ret %ir
}
`
	plain := verify(t, src, Options{})
	if got := classOf(t, plain, 5); got != ClassRacy {
		t.Fatalf("unannotated class = %v, want RACY", got)
	}
	rep := verify(t, src, Options{
		Benign: map[int64]string{5: "last-writer-wins scratch word"},
	})
	if got := classOf(t, rep, 5); got != ClassAnnotated {
		t.Errorf("annotated class = %v, want annotated", got)
	}
	if err := rep.Err(); err != nil {
		t.Errorf("Err = %v, want nil after annotation", err)
	}
}

func TestHandlerWatchdogErrorsSurface(t *testing.T) {
	src := mainHead + `
  %acc = add %acc, 3
` + mainTail + `
func @handler() {
entry:
  %one = mov 1
  %o = aadd _, 9, %one
  ret %o
}
`
	m := ir.MustParse(src)
	_, err := VerifyHandlers(m, engine.Serial(), Options{
		IntervalCycles:   50, // fire on cadence within this short run
		MaxHandlerCycles: 50,
		FaultPlan:        &faults.Plan{Seed: 7, OverrunProb: 1, OverrunCycles: 100_000},
	})
	if !errors.Is(err, vm.ErrHandlerOverrun) {
		t.Errorf("VerifyHandlers with overrun injection = %v, want ErrHandlerOverrun", err)
	}
}

func TestMissingHandlerAndEntry(t *testing.T) {
	m := ir.MustParse(`
func @main() {
entry:
  %z = mov 0
  ret %z
}
`)
	if _, err := VerifyHandlers(m, engine.Serial(), Options{}); !errors.Is(err, ErrNoHandler) {
		t.Errorf("missing handler: err = %v, want ErrNoHandler", err)
	}
	m2 := ir.MustParse(`
func @handler() {
entry:
  %z = mov 0
  ret %z
}
`)
	if _, err := VerifyHandlers(m2, engine.Serial(), Options{}); err == nil {
		t.Error("missing entry accepted")
	}
}

func TestCheckRunInvariantViolationReported(t *testing.T) {
	// A CheckRun that rejects any run with fires must show up as a
	// non-commutative finding (the fire-free baseline still passes).
	src := mainHead + `
  %acc = add %acc, 3
` + mainTail + `
func @handler() {
entry:
  %one = mov 1
  %o = aadd _, 9, %one
  ret %o
}
`
	m := ir.MustParse(src)
	rep, err := VerifyHandlers(m, engine.Serial(), Options{
		RetOnly: true,
		CheckRun: func(r *Run) error {
			if r.Fires > 0 {
				return errors.New("fired at all")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.NonCommute) == 0 {
		t.Error("CheckRun violations not reported")
	}
	found := false
	for _, nc := range rep.NonCommute {
		if strings.Contains(nc.Detail, "fired at all") {
			found = true
		}
	}
	if !found {
		t.Errorf("violation detail missing: %+v", rep.NonCommute)
	}
}
