package interleave

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ci/fuzz"
	"repro/internal/engine"
	"repro/internal/ir"
	"repro/internal/sanitize"
)

var update = flag.Bool("update", false, "rewrite golden files")

// quickOpts keeps exploration small for corpus-scale tests.
func quickOpts() Options {
	return Options{ContextBound: 1, MaxSchedules: 64, LimitInstrs: 2_000_000}
}

// reproOpts is the configuration minimal reproducers are shrunk and
// re-verified under: a dense probe interval keeps straight-line
// candidates probeable, so the reduction is free to drop every loop.
func reproOpts() Options {
	o := quickOpts()
	o.MaxSchedules = 16
	o.ProbeIntervalIR = 2
	return o
}

func TestFuzzCorpusWithHandlerIsClean(t *testing.T) {
	// The generated handler confines writes to its private region, so
	// every seed must verify clean: no shared-address race, and by
	// construction no main-visible effect, hence full commutativity.
	for seed := uint64(1); seed <= 8; seed++ {
		m := fuzz.Generate(seed, fuzz.Options{WithHandler: true})
		rep, err := VerifyHandlers(m, engine.Serial(), quickOpts())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := rep.Err(); err != nil {
			var buf bytes.Buffer
			rep.WriteTable(&buf)
			t.Errorf("seed %d: %v\n%s", seed, err, buf.String())
		}
	}
}

// injectRace plants a lost-update hazard into a generated module: the
// handler plain-stores its changing IR-delta argument into a shared
// word main read-modify-writes. Used by the shrink and determinism
// tests as a realistic "bug a fuzz run would catch".
func injectRace(m *ir.Module) {
	h := m.FuncByName("handler")
	// store _, 40, %p0  (p0 = the IR delta, different every fire)
	h.Blocks[0].Instrs = append([]ir.Instr{
		{Op: ir.OpStore, A: ir.NoReg, Imm: 40, B: 0},
	}, h.Blocks[0].Instrs...)
	mf := m.FuncByName("main")
	// Read-modify-write the same word at the top of main's entry block.
	r := ir.Reg(mf.NumRegs)
	mf.NumRegs++
	pre := []ir.Instr{
		{Op: ir.OpLoad, Dst: r, A: ir.NoReg, Imm: 40},
		{Op: ir.OpAdd, Dst: r, A: r, Imm: 1, BImm: true},
		{Op: ir.OpStore, A: ir.NoReg, Imm: 40, B: r},
	}
	mf.Blocks[0].Instrs = append(pre, mf.Blocks[0].Instrs...)
}

func TestInjectedRaceIsDetected(t *testing.T) {
	m := fuzz.Generate(3, fuzz.Options{WithHandler: true})
	injectRace(m)
	if err := m.Verify(); err != nil {
		t.Fatalf("injected module invalid: %v", err)
	}
	rep, err := VerifyHandlers(m, engine.Serial(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if got := classOf(t, rep, 40); got != ClassRacy {
		t.Fatalf("injected word class = %v, want RACY", got)
	}
	if rep.Err() == nil {
		t.Fatal("injected race not reported by Err")
	}
}

func TestShrinkRacePinsMinimalReproducer(t *testing.T) {
	if testing.Short() {
		t.Skip("ddmin reduction is slow")
	}
	m := fuzz.Generate(3, fuzz.Options{WithHandler: true})
	injectRace(m)
	opts := reproOpts()
	red := ShrinkRace(m, engine.Serial(), opts)

	blocks := 0
	for _, f := range red.Funcs {
		blocks += len(f.Blocks)
	}
	if blocks > 3 {
		t.Errorf("reduced module has %d blocks, want <= 3:\n%s", blocks, red.String())
	}
	// The reduction must preserve the failure...
	rep, err := VerifyHandlers(red, engine.Serial(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err() == nil {
		t.Fatal("reduced module no longer races")
	}
	// ...and survive a save/load round trip.
	dir := t.TempDir()
	if _, err := sanitize.SaveRepro(dir, "race_roundtrip", red,
		"interleave: injected lost-update, shrunk by ShrinkRace"); err != nil {
		t.Fatal(err)
	}
	back, err := sanitize.LoadRepros(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("LoadRepros returned %d modules", len(back))
	}
}

// TestPinnedReproducersStillRace auto-loads every module committed
// under testdata/repro/ and asserts the verifier still fails it — the
// inverse polarity of sanitize's pinned regressions: these are
// *supposed* to race, and a verifier change that stops seeing them is
// a detection regression.
func TestPinnedReproducersStillRace(t *testing.T) {
	dir := filepath.Join("testdata", "repro")
	mods, err := sanitize.LoadRepros(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) == 0 {
		t.Fatal("no pinned reproducers under testdata/repro")
	}
	for _, r := range mods {
		rep, err := VerifyHandlers(r.Mod, engine.Serial(), reproOpts())
		if err != nil {
			t.Errorf("repro %s: %v", r.Name, err)
			continue
		}
		if rep.Err() == nil {
			t.Errorf("repro %s: pinned race no longer detected", r.Name)
		}
	}
}

// TestPinInjectedRaceRepro regenerates the committed reproducer. Run
// with PIN_INTERLEAVE_REPRO=1 after a verifier change that invalidates
// the pinned module (and re-review the result — it must stay racy).
func TestPinInjectedRaceRepro(t *testing.T) {
	if os.Getenv("PIN_INTERLEAVE_REPRO") == "" {
		t.Skip("set PIN_INTERLEAVE_REPRO=1 to regenerate testdata/repro")
	}
	m := fuzz.Generate(3, fuzz.Options{WithHandler: true})
	injectRace(m)
	red := ShrinkRace(m, engine.Serial(), reproOpts())
	path, err := sanitize.SaveRepro(filepath.Join("testdata", "repro"), "lost_update", red,
		"interleave: lost-update race, handler plain-stores a word main RMWs.\n"+
			"Injected into fuzz seed 3 (WithHandler) and shrunk by ShrinkRace;\n"+
			"verified under reproOpts (ProbeIntervalIR=2, bound 1).\n"+
			"Regenerate with PIN_INTERLEAVE_REPRO=1 go test -run TestPinInjectedRaceRepro .")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("pinned %s", path)
}

func TestExplorationDeterministicAcrossWorkers(t *testing.T) {
	// Byte-identical reports at any worker count: exploration shards
	// across the engine pool, but folding and comparison merge in
	// schedule index order. Run a module big enough to enumerate pairs.
	m := fuzz.Generate(5, fuzz.Options{WithHandler: true})
	injectRace(m)
	opts := Options{ContextBound: 2, MaxSchedules: 120, MaxPairSites: 8, LimitInstrs: 2_000_000}

	render := func(eng *engine.Engine) string {
		rep, err := VerifyHandlers(m, eng, opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteTable(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := render(engine.Serial())
	for _, workers := range []int{2, 8} {
		eng := engine.New(workers)
		if got := render(eng); got != serial {
			t.Errorf("workers=%d report differs from serial:\n--- serial ---\n%s--- workers=%d ---\n%s",
				workers, serial, workers, got)
		}
	}
}

func TestRaceTableGolden(t *testing.T) {
	// Pin the cidump-facing table format byte-for-byte on a module
	// exercising several classes at once plus a non-commute finding.
	src := mainHead + `
  %one = mov 1
  %old = aadd _, 8, %one
  %v = load _, 4
  %v = add %v, 1
  store _, 4, %v
  %acc = add %acc, %v
  %acc = and %acc, 1023
  store _, 6, %acc
` + mainTail + `
func @handler(%ir) {
entry:
  %one = mov 1
  %o = aadd _, 8, %one
  store _, 4, %ir
  %p = load _, 6
  ret %p
}
`
	m := ir.MustParse(src)
	rep, err := VerifyHandlers(m, engine.Serial(), Options{MaxSchedules: 64})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "racetable.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("race table drifted from golden (rerun with -update if intended):\ngot:\n%s\nwant:\n%s",
			buf.String(), want)
	}
}
