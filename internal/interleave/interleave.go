// Package interleave is the handler interleaving verifier: a
// concurrency-safety check for the shared state that compiler-interrupt
// handlers and main code both touch. The paper's premise (§2) is that
// handlers run *inline* on the shared thread at probe sites, so the
// hazard is not data tearing — every VM memory access is word-atomic —
// but interleaving: a handler fired between two main accesses observes
// or mutates state mid-invariant, and whether that is safe depends on
// where the probe landed.
//
// The verifier works in four stages:
//
//  1. Record — run the module with the VM's OnLoad/OnStore/OnAtomic
//     taps, tagging every access with an epoch (main, or the k'th
//     handler invocation) and the probe site the epoch began at.
//  2. Detect — classify every address shared between handler and main
//     epochs: benign patterns (read-only sharing, atomic counters,
//     same-value stores, ci_disable-protected regions, handler-read
//     observation) versus unclassified races.
//  3. Explore — re-run the module forcing the handler to fire at every
//     feasible probe site, then at pairs of sites (iterative context
//     bounding), and compare each run against the fire-free baseline:
//     equal return value, equal main-epoch store stream, equal atomic
//     deltas and equal final memory outside handler-owned words prove
//     the handler commutes with main at every placement.
//  4. Shrink — on a racy or non-commutative module, reduce it with the
//     sanitize ddmin reducer to a minimal reproducer (see shrink.go)
//     pinned under testdata/repro/.
//
// VerifyHandlers is the CompileChecked-style entry; cmd/ciexp
// (interleave subcommand), cmd/cirun (-interleave) and cmd/cidump
// (-interleave race table) wire it to the CLI.
package interleave

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ci/instrument"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/ir"
)

// ErrNoHandler is returned when the module has no handler function to
// verify against.
var ErrNoHandler = errors.New("interleave: module has no handler function")

// ErrRace is wrapped by Report.Err when the verifier finds an
// unclassified race or a non-commutative interleaving.
var ErrRace = errors.New("interleave: handler/main interleaving hazard")

// Options configures VerifyHandlers. The zero value verifies @handler
// against @main under the CI design with sensible exploration caps.
type Options struct {
	// Entry and Handler name the main function and the handler body in
	// the module (defaults "main" / "handler"). The handler may take 0
	// arguments or receive the IR delta as its first argument.
	Entry   string
	Handler string
	// Args are the entry arguments when it takes parameters (default
	// {4095}, matching the sanitize oracle).
	Args []int64
	// Design / ProbeIntervalIR configure instrumentation (defaults CI,
	// 200 IR — denser than the production default so exploration sees
	// fine-grained placements).
	Design          instrument.Design
	ProbeIntervalIR int64
	// IntervalCycles is the cadence interval of the record run
	// (default 5000).
	IntervalCycles int64
	// LimitInstrs bounds each run (default 20M). Runs that exhaust it
	// count as inconclusive, never as findings.
	LimitInstrs int64
	// MaxHandlerCycles enables the VM overrun watchdog (0 = off).
	MaxHandlerCycles int64
	// ContextBound is the maximum number of forced handler fires per
	// schedule (default 2; 1..3 supported).
	ContextBound int
	// MaxPairSites caps the feasible sites that enter multi-fire
	// schedule enumeration (default 24; bound-1 schedules always cover
	// every feasible site). Truncation is reported, never silent.
	MaxPairSites int
	// MaxSchedules caps the multi-fire schedules explored (default
	// 2000); the excess is sampled out deterministically from Seed.
	MaxSchedules int
	// Seed drives schedule sampling (default 1).
	Seed uint64
	// RetOnly weakens the commutativity oracle to return-value
	// equality. App models whose handlers feed work to main (queue
	// producers) are placement-dependent in their store streams by
	// design; they pair RetOnly with a CheckRun conservation invariant.
	RetOnly bool
	// CheckRun, when non-nil, validates one run's end state (an
	// app-specific conservation law). A returned error marks the run's
	// schedule as non-commutative.
	CheckRun func(r *Run) error
	// Benign annotates addresses whose races are intentionally benign;
	// the justification string appears in the race table. Annotated
	// addresses do not fail Err.
	Benign map[int64]string
	// FaultPlan, when enabled, injects stall/overrun spikes into every
	// handler invocation (the faults package's handler stream) — used
	// by the watchdog-surfacing tests.
	FaultPlan *faults.Plan
}

func (o Options) withDefaults() Options {
	if o.Entry == "" {
		o.Entry = "main"
	}
	if o.Handler == "" {
		o.Handler = "handler"
	}
	if o.Args == nil {
		o.Args = []int64{4095}
	}
	if o.ProbeIntervalIR <= 0 {
		o.ProbeIntervalIR = 200
	}
	if o.IntervalCycles <= 0 {
		o.IntervalCycles = 5000
	}
	if o.LimitInstrs <= 0 {
		o.LimitInstrs = 20_000_000
	}
	if o.ContextBound <= 0 {
		o.ContextBound = 2
	}
	if o.ContextBound > 3 {
		o.ContextBound = 3
	}
	if o.MaxPairSites <= 0 {
		o.MaxPairSites = 24
	}
	if o.MaxSchedules <= 0 {
		o.MaxSchedules = 2000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Report is the verifier's verdict for one module.
type Report struct {
	Entry, Handler string
	// Fires counts handler invocations in the cadence record run.
	Fires int
	// Addrs lists every address shared between handler and main
	// epochs, classified, sorted by address. Access counts aggregate
	// over the record run, the baseline and every explored schedule.
	Addrs []AddrReport
	// TotalSites / FeasibleSites count main-context probe sites seen by
	// the enumeration run and how many could deliver a fire.
	TotalSites    int64
	FeasibleSites int
	// Bound is the context bound explored.
	Bound int
	// Schedules counts explored schedules; Sampled counts multi-fire
	// schedules dropped by MaxSchedules; PairTruncated counts feasible
	// sites excluded from multi-fire enumeration by MaxPairSites.
	Schedules     int
	Sampled       int
	PairTruncated int
	// Undelivered counts schedules whose forced fires could not all be
	// delivered (handler effects shifted control flow away from the
	// planned sites); Inconclusive counts runs that hit the step budget.
	Undelivered  int
	Inconclusive int
	// NonCommute lists schedules whose outcome differed from the
	// fire-free baseline (or failed CheckRun), with details.
	NonCommute []NonCommute
}

// NonCommute is one schedule whose outcome diverged from the baseline.
type NonCommute struct {
	Schedule []int64
	Detail   string
}

// Unclassified returns the addresses still classified as racy after
// benign annotation.
func (r *Report) Unclassified() []AddrReport {
	var out []AddrReport
	for _, a := range r.Addrs {
		if a.Class == ClassRacy {
			out = append(out, a)
		}
	}
	return out
}

// Err returns nil for a clean report and an ErrRace-wrapping error
// naming the unclassified races and non-commutative schedules.
func (r *Report) Err() error {
	racy := len(r.Unclassified())
	if racy == 0 && len(r.NonCommute) == 0 {
		return nil
	}
	return fmt.Errorf("%w: %d unclassified racy address(es), %d non-commutative schedule(s)",
		ErrRace, racy, len(r.NonCommute))
}

// VerifyHandlers runs the record → detect → explore pipeline over src
// and returns the classified report. The returned error is reserved
// for infrastructure failures (compile errors, missing functions, VM
// faults in the cadence/baseline runs — including handler watchdog
// errors, which surface here rather than being swallowed); interleaving
// findings live in the report and its Err method.
func VerifyHandlers(src *ir.Module, eng *engine.Engine, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if src.FuncByName(opts.Handler) == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoHandler, opts.Handler)
	}
	if src.FuncByName(opts.Entry) == nil {
		return nil, fmt.Errorf("interleave: no entry function %q", opts.Entry)
	}
	prog, err := core.Compile(src,
		core.WithDesign(opts.Design),
		core.WithProbeInterval(opts.ProbeIntervalIR))
	if err != nil {
		return nil, fmt.Errorf("interleave: compile: %w", err)
	}
	rep := &Report{Entry: opts.Entry, Handler: opts.Handler, Bound: opts.ContextBound}

	// Record: one cadence run with the access taps on.
	rec := execute(prog.Mod, opts, execCadence, nil)
	if err := rec.fault(); err != nil {
		return nil, fmt.Errorf("interleave: record run: %w", err)
	}
	rep.Fires = rec.Fires
	if opts.CheckRun != nil {
		if cerr := opts.CheckRun(rec); cerr != nil {
			rep.NonCommute = append(rep.NonCommute, NonCommute{Detail: "cadence run invariant: " + cerr.Error()})
		}
	}

	// Detect + Explore share the accumulator; explore folds every
	// scheduled run into it and compares outcomes against the
	// fire-free baseline.
	acc := newAccumulator()
	acc.fold(rec)
	if err := explore(prog.Mod, eng, opts, rep, acc); err != nil {
		return nil, err
	}
	rep.Addrs = acc.classify(opts.Benign)
	sort.Slice(rep.Addrs, func(i, j int) bool { return rep.Addrs[i].Addr < rep.Addrs[j].Addr })
	return rep, nil
}
