package cfg

// DomTree is a dominator tree computed with the Cooper-Harvey-Kennedy
// "A Simple, Fast Dominance Algorithm" iteration.
type DomTree struct {
	g *Graph
	// IDom maps block index to its immediate dominator; the entry maps
	// to itself and unreachable blocks map to -1.
	IDom []int
	// Children maps block index to dominated children indices.
	Children [][]int
	// depth in the dominator tree, used for O(h) Dominates queries.
	depth []int
}

// Dominators computes the dominator tree of g.
func Dominators(g *Graph) *DomTree {
	idom := chk(g.N, g.RPO, g.RPOIndex, g.Preds, 0)
	return newDomTree(g, idom, 0)
}

// PostDominators computes the postdominator tree of g. Functions with
// multiple return blocks are handled with a virtual exit; blocks from
// which no return is reachable (infinite loops) get IPDom -1.
type PostDomTree struct {
	// IPDom maps block index to immediate postdominator; a block that
	// postdominates all paths to exit(s) from itself maps to -1 when it
	// is itself a virtual-exit child, i.e. return blocks map to -1.
	IPDom []int
}

// PostDominators computes immediate postdominators of each block.
// Return blocks (and blocks with no path to a return) have IPDom -1.
func PostDominators(g *Graph) *PostDomTree {
	// Reverse graph with a virtual exit node N.
	n := g.N + 1
	exit := g.N
	preds := make([][]int, n) // preds in reverse graph = succs in original
	var exits []int
	for b := 0; b < g.N; b++ {
		for _, s := range g.Succs[b] {
			preds[b] = append(preds[b], s)
		}
		if len(g.Succs[b]) == 0 && g.Reachable(b) {
			exits = append(exits, b)
			preds[b] = append(preds[b], exit)
		}
	}
	// Postorder on the reverse graph from the virtual exit. Successor
	// function in the reverse graph is the original Preds, plus
	// exit → each return block.
	succs := make([][]int, n)
	for b := 0; b < g.N; b++ {
		succs[b] = g.Preds[b]
	}
	succs[exit] = exits

	rpo, rpoIndex := orderFrom(n, exit, succs)
	idom := chk(n, rpo, rpoIndex, preds, exit)
	out := make([]int, g.N)
	for b := 0; b < g.N; b++ {
		d := idom[b]
		if d == exit || b == idom[b] || rpoIndex[b] < 0 {
			out[b] = -1
		} else {
			out[b] = d
		}
	}
	return &PostDomTree{IPDom: out}
}

func orderFrom(n, root int, succs [][]int) (rpo, rpoIndex []int) {
	rpoIndex = make([]int, n)
	for i := range rpoIndex {
		rpoIndex[i] = -1
	}
	type frame struct{ node, next int }
	visited := make([]bool, n)
	post := make([]int, 0, n)
	stack := []frame{{node: root}}
	visited[root] = true
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if fr.next < len(succs[fr.node]) {
			s := succs[fr.node][fr.next]
			fr.next++
			if !visited[s] {
				visited[s] = true
				stack = append(stack, frame{node: s})
			}
			continue
		}
		post = append(post, fr.node)
		stack = stack[:len(stack)-1]
	}
	rpo = make([]int, len(post))
	for i := range post {
		rpo[i] = post[len(post)-1-i]
	}
	for i, b := range rpo {
		rpoIndex[b] = i
	}
	return rpo, rpoIndex
}

// chk runs the Cooper-Harvey-Kennedy iteration. rpo/rpoIndex describe
// a traversal from root over the graph whose predecessor relation is
// preds. Unvisited nodes get idom -1; the root maps to itself.
func chk(n int, rpo, rpoIndex []int, preds [][]int, root int) []int {
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[root] = root
	intersect := func(a, b int) int {
		for a != b {
			for rpoIndex[a] > rpoIndex[b] {
				a = idom[a]
			}
			for rpoIndex[b] > rpoIndex[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == root {
				continue
			}
			newIdom := -1
			for _, p := range preds[b] {
				if rpoIndex[p] < 0 || idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

func newDomTree(g *Graph, idom []int, root int) *DomTree {
	t := &DomTree{g: g, IDom: idom, Children: make([][]int, g.N), depth: make([]int, g.N)}
	for b := 0; b < g.N; b++ {
		if b != root && idom[b] >= 0 {
			t.Children[idom[b]] = append(t.Children[idom[b]], b)
		}
	}
	// Depths via BFS from root.
	queue := []int{root}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		for _, c := range t.Children[b] {
			t.depth[c] = t.depth[b] + 1
			queue = append(queue, c)
		}
	}
	return t
}

// StrictDomPairs returns every ordered pair (a, b) of reachable blocks
// where a strictly dominates b, by walking each block's immediate-
// dominator chain to the entry — O(n·h) for dominator-tree height h,
// versus O(n²·h) for pairwise Dominates queries. Translation-validation
// snapshots (internal/sanitize) use it to compare the dominance
// relation across pipeline stages.
func (t *DomTree) StrictDomPairs() [][2]int {
	var out [][2]int
	for b := 0; b < t.g.N; b++ {
		if !t.g.Reachable(b) || t.IDom[b] < 0 {
			continue
		}
		for a := b; a != t.IDom[a]; {
			a = t.IDom[a]
			out = append(out, [2]int{a, b})
		}
	}
	return out
}

// Dominates reports whether block a dominates block b (reflexive).
func (t *DomTree) Dominates(a, b int) bool {
	if t.IDom[b] == -1 && b != 0 {
		return false // unreachable
	}
	for t.depth[b] > t.depth[a] {
		b = t.IDom[b]
	}
	return a == b
}
