package cfg

import "repro/internal/ir"

// SplitCriticalEdges inserts an empty block on every critical edge
// (an edge whose source has multiple successors and whose destination
// has multiple predecessors). This is part of the §3.1 pre-processing
// that rewrites CFGs into the canonical forms the container-matching
// rules expect. Returns true if the function changed.
func SplitCriticalEdges(f *ir.Func) bool {
	f.Reindex()
	g := New(f)
	changed := false
	// Snapshot the block list: we append while iterating.
	blocks := append([]*ir.Block(nil), f.Blocks...)
	for _, b := range blocks {
		if b.Term.Kind != ir.TermBr {
			continue
		}
		split := func(target *ir.Block) *ir.Block {
			if len(g.Preds[target.Index]) < 2 {
				return target
			}
			nb := f.NewBlock(b.Name + ".crit")
			nb.Term = ir.Terminator{Kind: ir.TermJmp, Then: target, Cond: ir.NoReg, Val: ir.NoReg}
			changed = true
			return nb
		}
		if then := split(b.Term.Then); then != b.Term.Then {
			b.Term.Then = then
		}
		if els := split(b.Term.Else); els != b.Term.Else {
			b.Term.Else = els
		}
	}
	if changed {
		f.Reindex()
	}
	return changed
}

// LoopSimplify canonicalizes every natural loop of f, in the manner of
// LLVM's loop-simplify pass: each loop gets a dedicated preheader (a
// unique out-of-loop predecessor of the header whose only successor is
// the header) and a single latch (back edges from multiple latches are
// funneled through a fresh block). Returns true if the function changed.
func LoopSimplify(f *ir.Func) bool {
	changed := false
	for pass := 0; pass < 8; pass++ { // loop count is small; a few passes reach fixpoint
		f.Reindex()
		g := New(f)
		dom := Dominators(g)
		lf := FindLoops(g, dom)
		passChanged := false
		for _, l := range lf.Loops {
			if insertPreheader(f, g, l) {
				passChanged = true
				break // CFG changed; rebuild analyses
			}
			if mergeLatches(f, g, l) {
				passChanged = true
				break
			}
		}
		if !passChanged {
			break
		}
		changed = true
	}
	f.Reindex()
	return changed
}

// insertPreheader gives loop l a dedicated preheader if it lacks one.
func insertPreheader(f *ir.Func, g *Graph, l *Loop) bool {
	if l.Preheader >= 0 {
		return false
	}
	header := f.Blocks[l.Header]
	ph := f.NewBlock(header.Name + ".preheader")
	ph.Term = ir.Terminator{Kind: ir.TermJmp, Then: header, Cond: ir.NoReg, Val: ir.NoReg}
	// Redirect all out-of-loop predecessors to the preheader.
	redirected := false
	for _, pi := range g.Preds[l.Header] {
		if l.Blocks[pi] {
			continue
		}
		p := f.Blocks[pi]
		if p.Term.Then == header {
			p.Term.Then = ph
			redirected = true
		}
		if p.Term.Kind == ir.TermBr && p.Term.Else == header {
			p.Term.Else = ph
			redirected = true
		}
	}
	if l.Header == 0 {
		// The entry block is the header: the implicit function entry
		// edge also enters the loop, so the preheader must become the
		// new entry block.
		f.Blocks = f.Blocks[:len(f.Blocks)-1]
		nb := make([]*ir.Block, 0, len(f.Blocks)+1)
		nb = append(nb, ph)
		nb = append(nb, f.Blocks...)
		f.Blocks = nb
		f.Reindex()
		return true
	}
	if !redirected {
		// Loop not entered from outside (dead loop); drop the block.
		f.Blocks = f.Blocks[:len(f.Blocks)-1]
		return false
	}
	f.Reindex()
	return true
}

// mergeLatches funnels multiple back edges through one fresh latch.
func mergeLatches(f *ir.Func, g *Graph, l *Loop) bool {
	if len(l.Latches) <= 1 {
		return false
	}
	header := f.Blocks[l.Header]
	latch := f.NewBlock(header.Name + ".latch")
	latch.Term = ir.Terminator{Kind: ir.TermJmp, Then: header, Cond: ir.NoReg, Val: ir.NoReg}
	for _, ti := range l.Latches {
		t := f.Blocks[ti]
		if t.Term.Then == header {
			t.Term.Then = latch
		}
		if t.Term.Kind == ir.TermBr && t.Term.Else == header {
			t.Term.Else = latch
		}
	}
	f.Reindex()
	return true
}

// Canonicalize applies the full §3.1 pre-processing: return
// unification, then loop-simplify and critical-edge splitting iterated
// to a fixpoint. Returns true if the function changed.
func Canonicalize(f *ir.Func) bool {
	changed := UnifyReturns(f)
	for i := 0; i < 8; i++ {
		c1 := LoopSimplify(f)
		c2 := SplitCriticalEdges(f)
		if !c1 && !c2 {
			break
		}
		changed = changed || c1 || c2
	}
	return changed
}
