package cfg

import "repro/internal/ir"

// RegInfo summarizes where each register of a function is defined. It
// backs the light-weight "scalar evolution" used for trip counts and
// parametric function costs.
type RegInfo struct {
	f *ir.Func
	// defCount[r] is the number of static definitions of r. Parameters
	// have an implicit definition not counted here.
	defCount []int
	// onlyDef[r] is the unique defining instruction when defCount==1.
	onlyDef []*ir.Instr
	// onlyDefBlock[r] is that definition's block index.
	onlyDefBlock []int
	// onlyDefIndex[r] is the definition's index within its block.
	onlyDefIndex []int
}

// DefSite returns the unique definition site (block index, instruction
// index) of r, when r has exactly one static definition.
func (ri *RegInfo) DefSite(r ir.Reg) (block, index int, ok bool) {
	if r == ir.NoReg || int(r) >= len(ri.defCount) || ri.defCount[r] != 1 {
		return 0, 0, false
	}
	return ri.onlyDefBlock[r], ri.onlyDefIndex[r], true
}

// AnalyzeRegs scans f and records definition sites for every register.
func AnalyzeRegs(f *ir.Func) *RegInfo {
	ri := &RegInfo{
		f:            f,
		defCount:     make([]int, f.NumRegs),
		onlyDef:      make([]*ir.Instr, f.NumRegs),
		onlyDefBlock: make([]int, f.NumRegs),
		onlyDefIndex: make([]int, f.NumRegs),
	}
	for bi, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Dst == ir.NoReg {
				continue
			}
			switch in.Op {
			case ir.OpStore, ir.OpProbe, ir.OpNop:
				continue
			}
			ri.defCount[in.Dst]++
			ri.onlyDef[in.Dst] = in
			ri.onlyDefBlock[in.Dst] = bi
			ri.onlyDefIndex[in.Dst] = i
		}
	}
	return ri
}

// ConstValue reports whether r is a compile-time constant: a register
// whose single static definition is `mov imm` (and which is not a
// parameter).
func (ri *RegInfo) ConstValue(r ir.Reg) (int64, bool) {
	if r == ir.NoReg || int(r) < ri.f.NumParams {
		return 0, false
	}
	if ri.defCount[r] != 1 {
		return 0, false
	}
	d := ri.onlyDef[r]
	if d.Op == ir.OpMov && d.BImm {
		return d.Imm, true
	}
	return 0, false
}

// ParamValue reports whether r is an unmodified function parameter,
// returning the parameter index.
func (ri *RegInfo) ParamValue(r ir.Reg) (int, bool) {
	if r == ir.NoReg || int(r) >= ri.f.NumParams {
		return 0, false
	}
	if ri.defCount[r] != 0 {
		return 0, false
	}
	return int(r), true
}

// SingleDefOutside reports whether r is stable across loop l: either an
// unmodified parameter, or a register with exactly one definition that
// lies outside the loop.
func (ri *RegInfo) SingleDefOutside(r ir.Reg, l *Loop) bool {
	if r == ir.NoReg {
		return false
	}
	if int(r) < ri.f.NumParams {
		return ri.defCount[r] == 0
	}
	return ri.defCount[r] == 1 && !l.Blocks[ri.onlyDefBlock[r]]
}

// Induction describes a recognized canonical induction variable of a
// loop: i starts at Init, advances by the constant Step each
// iteration, and the loop continues while `i CmpOp Bound` holds, tested
// in the loop header.
type Induction struct {
	Found  bool
	IndVar ir.Reg
	// Step is the constant per-iteration increment (> 0).
	Step int64
	// Init: either a known constant or a register.
	InitConst   int64
	InitIsConst bool
	InitReg     ir.Reg
	// Bound register and its static interpretation.
	Bound        ir.Reg
	BoundConst   int64
	BoundIsConst bool
	BoundParam   int
	BoundIsParam bool
	// CmpOp is ir.OpCmpLt or ir.OpCmpLe.
	CmpOp ir.Opcode
	// StepBlock is the block index holding the `i += Step` definition.
	StepBlock int
	// StepIndex is that instruction's index within StepBlock.
	StepIndex int
}

// TripCount returns the constant iteration count when both bounds are
// known constants.
func (iv *Induction) TripCount() (int64, bool) {
	if !iv.Found || !iv.InitIsConst || !iv.BoundIsConst {
		return 0, false
	}
	limit := iv.BoundConst
	if iv.CmpOp == ir.OpCmpLe {
		limit++
	}
	if limit <= iv.InitConst {
		return 0, true
	}
	n := (limit - iv.InitConst + iv.Step - 1) / iv.Step
	return n, true
}

// ParamTripCount returns (paramIndex, scale, offset) such that the trip
// count is approximately offset + param/scale, when the bound is an
// unmodified parameter and the init is a constant. This is the affine
// form used for parametric function costs (§3.3).
func (iv *Induction) ParamTripCount() (param int, step int64, initConst int64, ok bool) {
	if !iv.Found || !iv.InitIsConst || !iv.BoundIsParam {
		return 0, 0, 0, false
	}
	return iv.BoundParam, iv.Step, iv.InitConst, true
}

// AnalyzeInduction recognizes the canonical induction variable of loop
// l, if any. The loop must be simplified (preheader + single latch);
// the pattern is:
//
//	header:  %c = lt/le %i, %bound ; br %c, <into loop>, <exit>
//	body:    ... %i = add %i, step ...   (single in-loop definition)
//	pre:     %i defined once outside the loop (mov const / mov reg)
//
// Loops whose condition is written `gt/ge %bound, %i` are normalized.
func AnalyzeInduction(f *ir.Func, g *Graph, l *Loop, ri *RegInfo) Induction {
	none := Induction{}
	header := f.Blocks[l.Header]
	if header.Term.Kind != ir.TermBr {
		return none
	}
	// Exactly one branch target must leave the loop.
	thenIn := l.Blocks[header.Term.Then.Index]
	elseIn := l.Blocks[header.Term.Else.Index]
	if thenIn == elseIn {
		return none
	}
	// Find the comparison defining the branch condition in the header.
	cond := header.Term.Cond
	var cmp *ir.Instr
	for i := len(header.Instrs) - 1; i >= 0; i-- {
		in := &header.Instrs[i]
		if in.Dst == cond && in.Op != ir.OpStore && in.Op != ir.OpProbe {
			cmp = in
			break
		}
	}
	if cmp == nil {
		return none
	}
	var indReg, boundReg ir.Reg
	var boundImm int64
	boundIsImm := false
	var op ir.Opcode
	switch cmp.Op {
	case ir.OpCmpLt, ir.OpCmpLe:
		indReg = cmp.A
		op = cmp.Op
		if cmp.BImm {
			boundImm, boundIsImm = cmp.Imm, true
		} else {
			boundReg = cmp.B
		}
	case ir.OpCmpGt, ir.OpCmpGe:
		// bound > i  ≡  i < bound
		if cmp.BImm {
			return none // imm > i: unusual, skip
		}
		indReg = cmp.B
		boundReg = cmp.A
		if cmp.Op == ir.OpCmpGt {
			op = ir.OpCmpLt
		} else {
			op = ir.OpCmpLe
		}
	default:
		return none
	}
	// If the comparison is inverted (loop continues on false), the
	// then-branch must enter the loop for our normalized ops.
	if !thenIn {
		return none
	}
	// The induction register must have exactly one in-loop definition
	// of the form `i = add i, step` and one out-of-loop definition.
	var stepIn *ir.Instr
	stepBlock, stepIndex := -1, -1
	var outDef *ir.Instr
	inLoopDefs, outLoopDefs := 0, 0
	for bi, b := range f.Blocks {
		for ii := range b.Instrs {
			in := &b.Instrs[ii]
			if in.Dst != indReg || in.Op == ir.OpStore || in.Op == ir.OpProbe {
				continue
			}
			if l.Blocks[bi] {
				inLoopDefs++
				stepIn = in
				stepBlock, stepIndex = bi, ii
			} else {
				outLoopDefs++
				outDef = in
			}
		}
	}
	if inLoopDefs != 1 || outLoopDefs != 1 {
		return none
	}
	if stepIn.Op != ir.OpAdd || stepIn.A != indReg || !stepIn.BImm || stepIn.Imm <= 0 {
		return none
	}
	iv := Induction{
		Found:     true,
		IndVar:    indReg,
		Step:      stepIn.Imm,
		CmpOp:     op,
		Bound:     boundReg,
		StepBlock: stepBlock,
		StepIndex: stepIndex,
	}
	// Init value.
	switch {
	case outDef.Op == ir.OpMov && outDef.BImm:
		iv.InitIsConst = true
		iv.InitConst = outDef.Imm
		iv.InitReg = ir.NoReg
	case outDef.Op == ir.OpMov:
		iv.InitReg = outDef.A
		if c, ok := ri.ConstValue(outDef.A); ok {
			iv.InitIsConst = true
			iv.InitConst = c
		}
	default:
		iv.InitReg = ir.NoReg
	}
	// Bound interpretation.
	if boundIsImm {
		iv.BoundIsConst = true
		iv.BoundConst = boundImm
		iv.Bound = ir.NoReg
	} else {
		if c, ok := ri.ConstValue(boundReg); ok {
			iv.BoundIsConst = true
			iv.BoundConst = c
		} else if p, ok := ri.ParamValue(boundReg); ok {
			iv.BoundIsParam = true
			iv.BoundParam = p
		}
	}
	return iv
}
