package cfg

import "repro/internal/ir"

// UnifyReturns rewrites f so it has exactly one return block: every
// TermRet block instead moves its value into a shared register and
// jumps to a fresh unified exit. Single-entry single-exit functions are
// what the container rules of the CI analysis reduce completely, so
// this runs as part of Canonicalize. Returns true if f changed.
func UnifyReturns(f *ir.Func) bool {
	var rets []*ir.Block
	for _, b := range f.Blocks {
		if b.Term.Kind == ir.TermRet {
			rets = append(rets, b)
		}
	}
	if len(rets) <= 1 {
		return false
	}
	hasVal := false
	for _, b := range rets {
		if b.Term.Val != ir.NoReg {
			hasVal = true
			break
		}
	}
	retReg := ir.NoReg
	if hasVal {
		retReg = f.NewReg()
	}
	exit := f.NewBlock("ret.unified")
	exit.Term = ir.Terminator{Kind: ir.TermRet, Val: retReg, Cond: ir.NoReg}
	for _, b := range rets {
		if hasVal && b.Term.Val != ir.NoReg {
			b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpMov, Dst: retReg, A: b.Term.Val, B: ir.NoReg})
		}
		b.Term = ir.Terminator{Kind: ir.TermJmp, Then: exit, Cond: ir.NoReg, Val: ir.NoReg}
	}
	f.Reindex()
	return true
}
