package cfg

import (
	"testing"

	"repro/internal/ir"
)

// diamond builds:
//
//	entry -> a, b ; a -> join ; b -> join ; join -> ret
func diamond(t *testing.T) *ir.Func {
	t.Helper()
	m := ir.NewModule("t")
	f := m.NewFunc("f", 1)
	b := ir.NewBuilder(f)
	a := b.Block("a")
	bb := b.Block("b")
	join := b.Block("join")
	c := b.BinI(ir.OpCmpLt, 0, 10)
	b.Br(c, a, bb)
	b.SetBlock(a)
	b.Jmp(join)
	b.SetBlock(bb)
	b.Jmp(join)
	b.SetBlock(join)
	b.Ret(ir.NoReg)
	f.Reindex()
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return f
}

func TestGraphBasics(t *testing.T) {
	f := diamond(t)
	g := New(f)
	if g.N != 4 {
		t.Fatalf("N = %d", g.N)
	}
	if len(g.Succs[0]) != 2 || len(g.Preds[3]) != 2 {
		t.Errorf("succs(entry)=%v preds(join)=%v", g.Succs[0], g.Preds[3])
	}
	if g.RPO[0] != 0 {
		t.Errorf("RPO does not start at entry: %v", g.RPO)
	}
	if g.RPOIndex[3] != 3 {
		t.Errorf("join should be last in RPO: %v", g.RPO)
	}
	for i := 0; i < 4; i++ {
		if !g.Reachable(i) {
			t.Errorf("block %d unreachable", i)
		}
	}
}

func TestDominatorsDiamond(t *testing.T) {
	f := diamond(t)
	g := New(f)
	dom := Dominators(g)
	if dom.IDom[1] != 0 || dom.IDom[2] != 0 || dom.IDom[3] != 0 {
		t.Errorf("IDom = %v, want all dominated by entry", dom.IDom)
	}
	if !dom.Dominates(0, 3) || dom.Dominates(1, 3) || dom.Dominates(3, 1) {
		t.Error("Dominates answers wrong on diamond")
	}
	if !dom.Dominates(2, 2) {
		t.Error("Dominates must be reflexive")
	}
}

func TestPostDominatorsDiamond(t *testing.T) {
	f := diamond(t)
	g := New(f)
	pd := PostDominators(g)
	// join postdominates everything; ret block's ipdom is -1.
	if pd.IPDom[0] != 3 || pd.IPDom[1] != 3 || pd.IPDom[2] != 3 {
		t.Errorf("IPDom = %v, want 3 for blocks 0..2", pd.IPDom)
	}
	if pd.IPDom[3] != -1 {
		t.Errorf("IPDom[join] = %d, want -1", pd.IPDom[3])
	}
}

func loopFunc(t *testing.T, n int64) (*ir.Module, *ir.Func) {
	t.Helper()
	m := ir.NewModule("t")
	f := m.NewFunc("f", 1)
	b := ir.NewBuilder(f)
	sum := b.Mov(0)
	b.ConstLoop(n, func(i ir.Reg) {
		b.BinTo(sum, ir.OpAdd, sum, i)
	})
	b.Ret(sum)
	f.Reindex()
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return m, f
}

func TestFindLoops(t *testing.T) {
	_, f := loopFunc(t, 100)
	g := New(f)
	dom := Dominators(g)
	lf := FindLoops(g, dom)
	if len(lf.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(lf.Loops))
	}
	l := lf.Loops[0]
	head := f.BlockByName("loop.head")
	body := f.BlockByName("loop.body")
	if l.Header != head.Index {
		t.Errorf("header = %d, want %d", l.Header, head.Index)
	}
	if !l.Contains(body.Index) || !l.Contains(head.Index) {
		t.Error("loop body/header not in Blocks set")
	}
	if l.NumBlocks() != 2 {
		t.Errorf("loop blocks = %d, want 2", l.NumBlocks())
	}
	if len(l.Latches) != 1 || l.Latches[0] != body.Index {
		t.Errorf("latches = %v", l.Latches)
	}
	if l.Preheader != f.BlockByName("entry").Index {
		t.Errorf("preheader = %d", l.Preheader)
	}
	if l.Depth != 1 {
		t.Errorf("depth = %d", l.Depth)
	}
	if len(l.Exits) != 1 || l.Exits[0] != head.Index {
		t.Errorf("exits = %v", l.Exits)
	}
}

func TestNestedLoops(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("f", 0)
	b := ir.NewBuilder(f)
	acc := b.Mov(0)
	b.ConstLoop(10, func(i ir.Reg) {
		b.ConstLoop(20, func(j ir.Reg) {
			b.BinTo(acc, ir.OpAdd, acc, j)
		})
	})
	b.Ret(acc)
	f.Reindex()
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	g := New(f)
	lf := FindLoops(g, Dominators(g))
	if len(lf.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(lf.Loops))
	}
	var outer, inner *Loop
	for _, l := range lf.Loops {
		if l.Depth == 1 {
			outer = l
		} else {
			inner = l
		}
	}
	if outer == nil || inner == nil {
		t.Fatal("missing outer or inner loop")
	}
	if inner.Parent != outer {
		t.Error("inner loop's parent is not the outer loop")
	}
	if len(outer.Children) != 1 || outer.Children[0] != inner {
		t.Error("outer loop's children wrong")
	}
	if inner.Depth != 2 {
		t.Errorf("inner depth = %d", inner.Depth)
	}
	// InnermostAt for an inner-loop block must be the inner loop.
	for bidx := range inner.Blocks {
		if lf.InnermostAt[bidx] != inner {
			t.Errorf("InnermostAt[%d] is not the inner loop", bidx)
		}
	}
	if !outer.Blocks[inner.Header] {
		t.Error("outer loop must contain the inner header")
	}
}

func TestLoopSimplifyAddsPreheaderAndLatch(t *testing.T) {
	// Build a loop whose header has two outside preds and two latches:
	//   entry -> head (cond) ; alt -> head ; bodyA -> head ; bodyB -> head
	src := `
func @f(%n) {
entry:
  %c0 = lt %n, 5
  br %c0, head, alt
alt:
  jmp head
head:
  %i = add %n, 1
  %c = lt %i, 100
  br %c, bodyA, exit
bodyA:
  %c2 = lt %i, 50
  br %c2, head, bodyB
bodyB:
  jmp head
exit:
  ret
}
`
	m := ir.MustParse(src)
	f := m.FuncByName("f")
	if !LoopSimplify(f) {
		t.Fatal("LoopSimplify reported no change")
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("after simplify: %v\n%s", err, f)
	}
	g := New(f)
	lf := FindLoops(g, Dominators(g))
	if len(lf.Loops) != 1 {
		t.Fatalf("loops = %d, want 1\n%s", len(lf.Loops), f)
	}
	l := lf.Loops[0]
	if l.Preheader < 0 {
		t.Errorf("no preheader after simplify\n%s", f)
	}
	if len(l.Latches) != 1 {
		t.Errorf("latches = %d, want 1\n%s", len(l.Latches), f)
	}
	// Idempotent.
	if LoopSimplify(f) {
		t.Error("LoopSimplify not idempotent")
	}
}

func TestLoopSimplifyEntryHeader(t *testing.T) {
	src := `
func @f(%n) {
head:
  %n = sub %n, 1
  %c = gt %n, 0
  br %c, head, exit
exit:
  ret %n
}
`
	m := ir.MustParse(src)
	f := m.FuncByName("f")
	LoopSimplify(f)
	if err := f.Verify(); err != nil {
		t.Fatalf("after simplify: %v\n%s", err, f)
	}
	g := New(f)
	lf := FindLoops(g, Dominators(g))
	if len(lf.Loops) != 1 {
		t.Fatalf("loops = %d\n%s", len(lf.Loops), f)
	}
	if lf.Loops[0].Preheader != 0 {
		t.Errorf("entry-header loop should get preheader as new entry\n%s", f)
	}
}

func TestSplitCriticalEdges(t *testing.T) {
	// entry branches to a and join; a branches to join and exit: the
	// edges entry->join and a->join are critical (join has 2 preds,
	// sources have 2 succs).
	src := `
func @f(%n) {
entry:
  %c = lt %n, 5
  br %c, a, join
a:
  %c2 = lt %n, 2
  br %c2, join, exit
join:
  jmp exit
exit:
  ret
}
`
	m := ir.MustParse(src)
	f := m.FuncByName("f")
	if !SplitCriticalEdges(f) {
		t.Fatal("no critical edges split")
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("after split: %v\n%s", err, f)
	}
	g := New(f)
	for b := 0; b < g.N; b++ {
		if len(g.Succs[b]) < 2 {
			continue
		}
		for _, s := range g.Succs[b] {
			if len(g.Preds[s]) >= 2 {
				t.Errorf("critical edge %s -> %s remains", f.Blocks[b].Name, f.Blocks[s].Name)
			}
		}
	}
	if SplitCriticalEdges(f) {
		t.Error("SplitCriticalEdges not idempotent")
	}
}

func TestAnalyzeInductionConstTrips(t *testing.T) {
	_, f := loopFunc(t, 100)
	g := New(f)
	lf := FindLoops(g, Dominators(g))
	ri := AnalyzeRegs(f)
	iv := AnalyzeInduction(f, g, lf.Loops[0], ri)
	if !iv.Found {
		t.Fatalf("induction not found\n%s", f)
	}
	if iv.Step != 1 || !iv.InitIsConst || iv.InitConst != 0 {
		t.Errorf("induction = %+v", iv)
	}
	n, ok := iv.TripCount()
	if !ok || n != 100 {
		t.Errorf("TripCount = %d, %v; want 100, true", n, ok)
	}
}

func TestAnalyzeInductionParamBound(t *testing.T) {
	src := `
func @f(%n) {
entry:
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %i = add %i, 2
  jmp head
exit:
  ret %i
}
`
	m := ir.MustParse(src)
	f := m.FuncByName("f")
	g := New(f)
	lf := FindLoops(g, Dominators(g))
	ri := AnalyzeRegs(f)
	iv := AnalyzeInduction(f, g, lf.Loops[0], ri)
	if !iv.Found || !iv.BoundIsParam || iv.BoundParam != 0 || iv.Step != 2 {
		t.Fatalf("induction = %+v", iv)
	}
	if _, ok := iv.TripCount(); ok {
		t.Error("param-bounded loop must not report const trip count")
	}
	p, step, init, ok := iv.ParamTripCount()
	if !ok || p != 0 || step != 2 || init != 0 {
		t.Errorf("ParamTripCount = %d,%d,%d,%v", p, step, init, ok)
	}
}

func TestAnalyzeInductionRejectsMutatedBound(t *testing.T) {
	src := `
func @f(%n) {
entry:
  %n = add %n, 1
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %i = add %i, 1
  jmp head
exit:
  ret %i
}
`
	m := ir.MustParse(src)
	f := m.FuncByName("f")
	g := New(f)
	lf := FindLoops(g, Dominators(g))
	ri := AnalyzeRegs(f)
	iv := AnalyzeInduction(f, g, lf.Loops[0], ri)
	if iv.Found && (iv.BoundIsParam || iv.BoundIsConst) {
		t.Errorf("mutated bound must not be const/param: %+v", iv)
	}
}

func TestAnalyzeInductionGtForm(t *testing.T) {
	src := `
func @f() {
entry:
  %i = mov 0
  %n = mov 50
  jmp head
head:
  %c = gt %n, %i
  br %c, body, exit
body:
  %i = add %i, 1
  jmp head
exit:
  ret %i
}
`
	m := ir.MustParse(src)
	f := m.FuncByName("f")
	g := New(f)
	lf := FindLoops(g, Dominators(g))
	ri := AnalyzeRegs(f)
	iv := AnalyzeInduction(f, g, lf.Loops[0], ri)
	if !iv.Found {
		t.Fatal("gt-form induction not recognized")
	}
	n, ok := iv.TripCount()
	if !ok || n != 50 {
		t.Errorf("TripCount = %d, %v; want 50", n, ok)
	}
}

func TestRegInfoConstAndParam(t *testing.T) {
	src := `
func @f(%p) {
entry:
  %c = mov 42
  %twice = add %c, %c
  %twice = add %twice, 1
  ret %twice
}
`
	m := ir.MustParse(src)
	f := m.FuncByName("f")
	ri := AnalyzeRegs(f)
	if v, ok := ri.ConstValue(1); !ok || v != 42 {
		t.Errorf("ConstValue(%%c) = %d, %v", v, ok)
	}
	if _, ok := ri.ConstValue(2); ok {
		t.Error("multiply-defined register must not be const")
	}
	if p, ok := ri.ParamValue(0); !ok || p != 0 {
		t.Errorf("ParamValue = %d, %v", p, ok)
	}
	if _, ok := ri.ParamValue(1); ok {
		t.Error("non-param register must not be a param")
	}
}

func TestUnifyReturns(t *testing.T) {
	src := `
func @f(%n) {
entry:
  %c = lt %n, 0
  br %c, neg, pos
neg:
  %a = mov -1
  ret %a
pos:
  %b = add %n, 1
  ret %b
}
`
	m := ir.MustParse(src)
	f := m.FuncByName("f")
	if !UnifyReturns(f) {
		t.Fatal("UnifyReturns reported no change")
	}
	if err := f.Verify(); err != nil {
		t.Fatalf("after unify: %v\n%s", err, f)
	}
	rets := 0
	for _, b := range f.Blocks {
		if b.Term.Kind == ir.TermRet {
			rets++
		}
	}
	if rets != 1 {
		t.Fatalf("rets = %d, want 1\n%s", rets, f)
	}
	// Idempotent.
	if UnifyReturns(f) {
		t.Error("UnifyReturns not idempotent")
	}
	// Semantics: via block-level evaluation through the VM is covered
	// elsewhere; structurally, both old ret blocks must now move their
	// value into the shared register.
	exit := f.BlockByName("ret.unified")
	if exit == nil || exit.Term.Val == ir.NoReg {
		t.Fatal("unified exit missing or void")
	}
}

func TestUnifyReturnsVoid(t *testing.T) {
	src := `
func @f(%n) {
entry:
  %c = lt %n, 0
  br %c, a, b
a:
  ret
b:
  ret
}
`
	m := ir.MustParse(src)
	f := m.FuncByName("f")
	UnifyReturns(f)
	if err := f.Verify(); err != nil {
		t.Fatalf("%v\n%s", err, f)
	}
	exit := f.BlockByName("ret.unified")
	if exit == nil || exit.Term.Val != ir.NoReg {
		t.Error("void rets should unify to a void ret")
	}
}

func TestPostDominatorsWithLoop(t *testing.T) {
	_, f := loopFunc(t, 10)
	g := New(f)
	pd := PostDominators(g)
	exit := f.BlockByName("loop.exit").Index
	head := f.BlockByName("loop.head").Index
	body := f.BlockByName("loop.body").Index
	entry := f.BlockByName("entry").Index
	if pd.IPDom[entry] != head {
		t.Errorf("ipdom(entry) = %d, want head %d", pd.IPDom[entry], head)
	}
	if pd.IPDom[body] != head {
		t.Errorf("ipdom(body) = %d, want head %d", pd.IPDom[body], head)
	}
	if pd.IPDom[head] != exit {
		t.Errorf("ipdom(head) = %d, want exit %d", pd.IPDom[head], exit)
	}
	if pd.IPDom[exit] != -1 {
		t.Errorf("ipdom(exit) = %d, want -1", pd.IPDom[exit])
	}
}

func TestSingleDefOutside(t *testing.T) {
	src := `
func @f(%p) {
entry:
  %k = mov 9
  %i = mov 0
  jmp head
head:
  %c = lt %i, %k
  br %c, body, exit
body:
  %inner = add %i, %k
  %i = add %i, 1
  jmp head
exit:
  ret %i
}
`
	m := ir.MustParse(src)
	f := m.FuncByName("f")
	g := New(f)
	lf := FindLoops(g, Dominators(g))
	ri := AnalyzeRegs(f)
	l := lf.Loops[0]
	if !ri.SingleDefOutside(1, l) { // %k
		t.Error("%k defined once outside the loop")
	}
	if ri.SingleDefOutside(2, l) { // %i: defined inside too
		t.Error("%i is loop-modified")
	}
	if !ri.SingleDefOutside(0, l) { // parameter
		t.Error("unmodified parameter is stable")
	}
	if ri.SingleDefOutside(ir.NoReg, l) {
		t.Error("NoReg cannot be stable")
	}
}

// StrictDomPairs must agree with pairwise Dominates queries and skip
// unreachable blocks.
func TestStrictDomPairs(t *testing.T) {
	f := diamond(t)
	g := New(f)
	dom := Dominators(g)
	got := make(map[[2]int]bool)
	for _, p := range dom.StrictDomPairs() {
		if got[p] {
			t.Errorf("duplicate pair %v", p)
		}
		got[p] = true
	}
	want := 0
	for a := 0; a < g.N; a++ {
		for b := 0; b < g.N; b++ {
			if a == b || !g.Reachable(a) || !g.Reachable(b) {
				continue
			}
			if dom.Dominates(a, b) {
				want++
				if !got[[2]int{a, b}] {
					t.Errorf("missing pair (%d, %d)", a, b)
				}
			} else if got[[2]int{a, b}] {
				t.Errorf("spurious pair (%d, %d)", a, b)
			}
		}
	}
	if len(got) != want {
		t.Errorf("got %d pairs, want %d", len(got), want)
	}
	// Diamond: entry strictly dominates a, b, join; nothing else.
	if want != 3 {
		t.Errorf("diamond has %d strict-dominance pairs, want 3", want)
	}
}
