// Package cfg provides control-flow-graph analyses over ir functions:
// predecessor/successor maps, reverse postorder, dominator and
// postdominator trees, natural-loop detection, the canonicalization
// transforms of §3.1 (critical-edge splitting, loop-simplify), and the
// induction-variable / trip-count analysis that stands in for LLVM's
// loop-simplify + scalar-evolution passes.
package cfg

import "repro/internal/ir"

// Graph caches the CFG structure of a function, keyed by Block.Index.
// It must be rebuilt (cfg.New) after any transform that changes blocks
// or terminators.
type Graph struct {
	F *ir.Func
	// N is the number of blocks.
	N int
	// Succs and Preds map block index to successor/predecessor indices.
	Succs, Preds [][]int
	// RPO lists reachable block indices in reverse postorder from the
	// entry. RPOIndex gives each block's position, or -1 if the block
	// is unreachable.
	RPO      []int
	RPOIndex []int
}

// New builds the CFG for f. Block indices must be fresh (ir.Func.Reindex).
func New(f *ir.Func) *Graph {
	n := len(f.Blocks)
	g := &Graph{
		F:        f,
		N:        n,
		Succs:    make([][]int, n),
		Preds:    make([][]int, n),
		RPOIndex: make([]int, n),
	}
	var scratch []*ir.Block
	for i, b := range f.Blocks {
		scratch = b.Succs(scratch[:0])
		for _, s := range scratch {
			g.Succs[i] = append(g.Succs[i], s.Index)
			g.Preds[s.Index] = append(g.Preds[s.Index], i)
		}
	}
	// Iterative postorder DFS from the entry.
	for i := range g.RPOIndex {
		g.RPOIndex[i] = -1
	}
	if n == 0 {
		return g
	}
	type frame struct {
		node int
		next int
	}
	visited := make([]bool, n)
	post := make([]int, 0, n)
	stack := []frame{{node: 0}}
	visited[0] = true
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if fr.next < len(g.Succs[fr.node]) {
			s := g.Succs[fr.node][fr.next]
			fr.next++
			if !visited[s] {
				visited[s] = true
				stack = append(stack, frame{node: s})
			}
			continue
		}
		post = append(post, fr.node)
		stack = stack[:len(stack)-1]
	}
	g.RPO = make([]int, len(post))
	for i := range post {
		g.RPO[i] = post[len(post)-1-i]
	}
	for i, b := range g.RPO {
		g.RPOIndex[b] = i
	}
	return g
}

// Reachable reports whether block index b is reachable from the entry.
func (g *Graph) Reachable(b int) bool { return g.RPOIndex[b] >= 0 }
