package cfg

import "sort"

// Loop describes one natural loop.
type Loop struct {
	// Header is the loop header block index.
	Header int
	// Latches are the blocks with back edges to the header.
	Latches []int
	// Blocks is the set of block indices in the loop (header included).
	Blocks map[int]bool
	// Parent is the innermost enclosing loop, nil for top-level loops.
	Parent *Loop
	// Children are the loops nested immediately inside this one.
	Children []*Loop
	// Depth is the nesting depth (top-level loops have depth 1).
	Depth int
	// Preheader is the unique block outside the loop whose only
	// successor is the header, or -1 when the loop is not simplified.
	Preheader int
	// Exits are in-loop blocks with a successor outside the loop.
	Exits []int
}

// NumBlocks returns the number of blocks in the loop body.
func (l *Loop) NumBlocks() int { return len(l.Blocks) }

// Contains reports whether block index b belongs to the loop.
func (l *Loop) Contains(b int) bool { return l.Blocks[b] }

// LoopForest is the set of natural loops of a function with nesting.
type LoopForest struct {
	// Loops lists all loops, outermost-first within each nest.
	Loops []*Loop
	// ByHeader maps header block index to its loop.
	ByHeader map[int]*Loop
	// InnermostAt maps block index to the innermost loop containing it
	// (nil if the block is not in any loop).
	InnermostAt []*Loop
}

// FindLoops detects the natural loops of g using the dominator tree.
// Back edges t→h with h dominating t define loops; loops sharing a
// header are merged, as is conventional.
func FindLoops(g *Graph, dom *DomTree) *LoopForest {
	lf := &LoopForest{ByHeader: make(map[int]*Loop), InnermostAt: make([]*Loop, g.N)}
	// Collect back edges.
	for t := 0; t < g.N; t++ {
		if !g.Reachable(t) {
			continue
		}
		for _, h := range g.Succs[t] {
			if !dom.Dominates(h, t) {
				continue
			}
			l := lf.ByHeader[h]
			if l == nil {
				l = &Loop{Header: h, Blocks: map[int]bool{h: true}, Preheader: -1}
				lf.ByHeader[h] = l
				lf.Loops = append(lf.Loops, l)
			}
			l.Latches = append(l.Latches, t)
			// Walk backwards from the latch collecting the body.
			stack := []int{t}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.Blocks[b] {
					continue
				}
				l.Blocks[b] = true
				for _, p := range g.Preds[b] {
					if g.Reachable(p) {
						stack = append(stack, p)
					}
				}
			}
		}
	}
	// Sort loops by size descending so parents precede children.
	sort.Slice(lf.Loops, func(i, j int) bool {
		if len(lf.Loops[i].Blocks) != len(lf.Loops[j].Blocks) {
			return len(lf.Loops[i].Blocks) > len(lf.Loops[j].Blocks)
		}
		return lf.Loops[i].Header < lf.Loops[j].Header
	})
	// Nesting: a loop's parent is the smallest loop strictly containing
	// its header (other than itself).
	for i, l := range lf.Loops {
		for j := i - 1; j >= 0; j-- {
			cand := lf.Loops[j]
			if cand != l && cand.Blocks[l.Header] {
				// Loops are sorted by size descending, so scanning j
				// downward visits smaller loops first; the first match
				// is the smallest strict container.
				l.Parent = cand
				break
			}
		}
		if l.Parent != nil {
			l.Parent.Children = append(l.Parent.Children, l)
			l.Depth = l.Parent.Depth + 1
		} else {
			l.Depth = 1
		}
	}
	// Innermost loop per block: iterate loops from largest to smallest
	// so smaller (inner) loops overwrite.
	for _, l := range lf.Loops {
		for b := range l.Blocks {
			lf.InnermostAt[b] = l
		}
	}
	// Exits and preheaders.
	for _, l := range lf.Loops {
		for b := range l.Blocks {
			for _, s := range g.Succs[b] {
				if !l.Blocks[s] {
					l.Exits = append(l.Exits, b)
					break
				}
			}
		}
		sort.Ints(l.Exits)
		l.Preheader = findPreheader(g, l)
	}
	return lf
}

func findPreheader(g *Graph, l *Loop) int {
	// The preheader is the unique out-of-loop predecessor of the
	// header, and must have the header as its only successor.
	ph := -1
	for _, p := range g.Preds[l.Header] {
		if l.Blocks[p] {
			continue
		}
		if ph != -1 {
			return -1
		}
		ph = p
	}
	if ph == -1 || len(g.Succs[ph]) != 1 {
		return -1
	}
	return ph
}
