// Command cirun compiles a textual IR program with Compiler Interrupts
// and runs it on the VM, reporting execution statistics — the
// repository's equivalent of building a C program with the CI pass and
// libci.
//
//	cirun [flags] program.ir
//
// Flags select the probe design, probe interval, CI interval, entry
// function and arguments. -quantum-policy picks the handler interval
// controller (fixed, aimd, feedback). Use -print to dump the instrumented IR
// instead of running, -trace FILE to write a Chrome trace_event JSON
// of the run (probe fires, handler windows, external calls), -metrics
// to print interval-error quantiles, and -timeline N for the legacy
// textual dump of the last N interrupt-timeline events. -slo-p999us N
// turns the reported p99.9 inter-fire interval into a gate: cirun
// exits non-zero when the polling cadence's tail exceeds N µs;
// -slo-maxus N gates the worst-case single gap the same way.
//
// -interleave switches to verify-then-exit mode: instead of running
// the program, the handler interleaving verifier explores forcing
// @handler at every feasible probe site (context bound -bound) and
// prints the race-classification table, exiting non-zero on an
// unclassified race or a non-commutative schedule.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/interleave"
	"repro/internal/ir"
	"repro/internal/sanitize"
	"repro/internal/stats"
	"repro/internal/vm"
)

func main() {
	cf := cliflags.New(flag.CommandLine).AddDesign().AddCompile().AddQuantum().AddSanitize().AddTier().AddObs().AddSLO().AddInterleave()
	interval := flag.Int64("interval", 5000, "CI interval in cycles (0 disables the handler)")
	entry := flag.String("entry", "main", "entry function")
	argsFlag := flag.String("args", "", "comma-separated int64 arguments for the entry function")
	threads := flag.Int("threads", 1, "VM threads")
	limit := flag.Int64("limit", 1_000_000_000, "per-thread instruction limit")
	optimize := flag.Bool("O", false, "run the IR optimizer before instrumenting")
	printIR := flag.Bool("print", false, "print the instrumented IR and exit")
	costs := flag.Bool("costs", false, "print the exported cost file (§2.6) and exit")
	timeline := flag.Int("timeline", 0, "record and print the last N interrupt-timeline events")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cirun [flags] program.ir")
		flag.PrintDefaults()
		os.Exit(2)
	}
	d, err := cf.ParseDesign()
	if err != nil {
		fail("%v", err)
	}
	tier, err := cf.ParseTier()
	if err != nil {
		fail("%v", err)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	mod, err := ir.Parse(string(src))
	if err != nil {
		fail("%v", err)
	}
	// Refuse to execute a malformed module: verify up front so a bad
	// input exits non-zero with the verifier's diagnosis rather than
	// surfacing later as a VM fault.
	if err := mod.Verify(); err != nil {
		fail("malformed module %s: %v", flag.Arg(0), err)
	}
	if cf.Interleave {
		// Verify-then-exit mode: explore handler placements instead of
		// running the program, mirroring `go vet` vs `go run`.
		args, err := cliflags.ParseArgs(*argsFlag)
		if err != nil {
			fail("%v", err)
		}
		rep, err := interleave.VerifyHandlers(mod, engine.Serial(), interleave.Options{
			Entry:           *entry,
			Args:            args,
			Design:          d,
			ProbeIntervalIR: cf.ProbeInterval,
			IntervalCycles:  *interval,
			ContextBound:    cf.Bound,
		})
		if err != nil {
			fail("interleave: %v", err)
		}
		if err := rep.WriteTable(os.Stdout); err != nil {
			fail("%v", err)
		}
		if rep.Err() != nil {
			os.Exit(1)
		}
		return
	}
	opts := []core.Option{
		core.WithDesign(d),
		core.WithProbeInterval(cf.ProbeInterval),
		core.WithAllowableError(cf.AllowableError),
		core.WithOptimize(*optimize),
		core.WithTier(tier),
		core.WithObs(cf.Scope()),
	}
	if cf.Sanitize {
		opts = append(opts, sanitize.Checked(sanitize.Options{Exec: true, AllowInconclusive: true}))
	}
	prog, err := core.Compile(mod, opts...)
	if err != nil {
		fail("%v", err)
	}
	if *printIR {
		fmt.Print(prog.Mod.String())
		return
	}
	if *costs {
		data, err := prog.ExportCosts()
		if err != nil {
			fail("%v", err)
		}
		os.Stdout.Write(data)
		fmt.Println()
		return
	}
	args, err := cliflags.ParseArgs(*argsFlag)
	if err != nil {
		fail("%v", err)
	}
	if *timeline > 0 {
		machine := vm.New(prog.Mod, nil, 1)
		machine.LimitInstrs = *limit
		machine.Tier = tier
		machine.Obs = cf.Scope()
		th := machine.NewThread(0)
		tr := vm.NewTrace(*timeline)
		th.AttachTrace(tr)
		if *interval > 0 {
			th.RT.RegisterCI(*interval, func(uint64) {})
		}
		rv, err := th.Run(*entry, args...)
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("design %s, ret=%d, %d cycles; interrupt timeline:\n%s", d, rv, th.Stats.Cycles, tr)
		finish(cf)
		return
	}
	quantum, err := cf.ParseQuantum()
	if err != nil {
		fail("%v", err)
	}
	res, err := prog.Run(*entry,
		core.WithThreads(*threads),
		core.WithArgv(args...),
		core.WithInterval(*interval),
		core.WithQuantumPolicy(quantum),
		core.WithRecordIntervals(*interval > 0),
		core.WithLimit(*limit))
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("design %s, %d static probes\n", d, prog.Instr.Probes)
	sloViolated := false
	for id, s := range res.Stats {
		fmt.Printf("thread %d: ret=%d cycles=%d instrs=%d probes=%d interrupts=%d\n",
			id, res.Returns[id], s.Cycles, s.Instrs, s.Probes, s.HandlerCalls)
		if ivs := res.Intervals[id]; len(ivs) > 1 {
			sum := stats.Summarize(ivs)
			fmt.Printf("  interval cycles: %s\n", sum)
			// -slo-p999us guards the polling cadence itself: a handler
			// hosting a control loop is only as responsive as its p99.9
			// inter-fire gap, so a stretched tail is an SLO violation.
			if us := float64(sum.P999) / 2600.0; cf.SLOP999Us > 0 && us > cf.SLOP999Us {
				fmt.Fprintf(os.Stderr, "cirun: thread %d: p99.9 inter-fire interval %.1fµs exceeds -slo-p999us %.1f\n",
					id, us, cf.SLOP999Us)
				sloViolated = true
			}
			// -slo-maxus gates the worst single gap: the quantile gate
			// tolerates a lone stall that a control loop hosted in the
			// handler cannot (one missed deadline is still missed).
			if us := float64(sum.Max) / 2600.0; cf.SLOMaxUs > 0 && us > cf.SLOMaxUs {
				fmt.Fprintf(os.Stderr, "cirun: thread %d: worst inter-fire interval %.1fµs exceeds -slo-maxus %.1f\n",
					id, us, cf.SLOMaxUs)
				sloViolated = true
			}
		}
	}
	finish(cf)
	if sloViolated {
		os.Exit(1)
	}
}

func finish(cf *cliflags.Flags) {
	if err := cf.Finish(os.Stdout); err != nil {
		fail("%v", err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cirun: "+format+"\n", args...)
	os.Exit(1)
}
