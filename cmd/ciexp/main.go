// Command ciexp regenerates the paper's tables and figures from the
// command line:
//
//	ciexp fig4      mTCP throughput/latency vs concurrent connections
//	ciexp fig5      mTCP with per-request compute work
//	ciexp fig6      Shenango latency vs load + miner hash rate
//	ciexp fig7      delegation vs locks, throughput vs threads
//	ciexp fig8      client request latency distribution
//	ciexp fig9      CI-design overhead, 1 thread
//	ciexp fig10     interval accuracy, 1 thread
//	ciexp fig11     CI-design overhead, 32 threads
//	ciexp fig12     CI vs hardware interrupts across intervals
//	ciexp table7    per-benchmark runtimes (PT, CI, Naive × 1/32 threads)
//	ciexp hybrid    hybrid CI + hardware-watchdog extension (§5.4 future work)
//	ciexp allowable §3.3 allowable-error parameter study
//	ciexp probes    §5.4 dynamic probe executions, CI vs Naive
//	ciexp chaos     fault-injection sweep asserting the graceful-
//	                degradation invariants (exits non-zero on violation)
//	ciexp ramp      load ramp: shenango offered load vs capacity with the
//	                overload plane off and on, SLO-checked (exits
//	                non-zero on an SLO violation)
//	ciexp soak      scripted load ramp + chaos with the overload plane
//	                on; every phase judged against the SLO guard (exits
//	                non-zero on violation)
//	ciexp fleet     fleet crash-soak: N replicas behind the
//	                health-checked balancer swept across load factors
//	                with and without a mid-soak crash plan, judged
//	                against the resilience guards (goodput floor, retry
//	                amplification, tenant SLO isolation, worker-count
//	                byte identity; exits non-zero on violation; -quick
//	                runs only the 1.2x soak pair), then the zone-outage
//	                headline: 1-of-4 zones crash-looping at 1.2x load
//	                with migration on, gated on zero stranded attempts,
//	                the extended conservation oracle, a 90% goodput
//	                floor vs the no-outage twin and retry amplification
//	                ≤ 1.15; -scale N > 1 appends a 64-replica / 4-zone
//	                scale soak (scale 42 ≈ 10M requests) proving
//	                serial-vs-parallel byte identity at that size
//	ciexp quantum   quantum adaptivity: handler-gap tail error vs
//	                interval-control policy (fixed, AIMD, feedback) at
//	                2x load with mixed request classes, across the CI,
//	                Naive, hardware-interrupt and user-interrupt
//	                designs; gated on the feedback controller beating
//	                the fixed quantum on p99.9 gap error inside the
//	                CI overhead budget (exits non-zero on violation;
//	                -quick uses a workload subset)
//	ciexp sanitize  translation-validation sweep: stage checks plus the
//	                differential execution oracle over a fuzz corpus and
//	                all workloads (exits non-zero on any divergence)
//	ciexp interleave
//	                handler interleaving sweep: probe-schedule
//	                exploration with race classification over the three
//	                app sharing-protocol models and a fuzz corpus with
//	                generated handlers (exits non-zero on an
//	                unclassified race or non-commutative schedule;
//	                -bound sets the context bound, -quick uses bound 1
//	                and a smaller corpus)
//	ciexp tracecheck FILE
//	                validate that FILE is a well-formed Chrome
//	                trace_event JSON document (used by verify.sh)
//
// The workload sweeps run on the parallel experiment engine: -workers N
// shards the cells across N workers (0 = GOMAXPROCS; results are
// byte-identical at any worker count, and -workers 1 reproduces the
// serial pipeline exactly), and -store FILE persists per-cell results
// with content hashes so unchanged cells are skipped on re-runs.
//
// Observability: -trace FILE writes a Chrome trace_event JSON of the
// run (probe fires, VM stage transitions, engine cache hits/misses,
// mtcp/shenango/ffwd scheduling decisions — load it in chrome://tracing
// or Perfetto) and -metrics prints counter and histogram quantiles
// (p50/p90/p99 interval error per design, handler latency) after the
// figures.
//
// Flags: -scale N (workload size multiplier, default 1),
// -quick (subset of workloads for fig12; single fault rate for chaos;
// smaller fuzz corpus for sanitize; two phases for soak), -seed N
// (chaos/soak fault-plan seed), -workers N, -store FILE, -sanitize
// (route every cache-miss compile in any sweep through the
// translation-validation stage checks), -trace FILE, -metrics,
// -slo-p999us/-max-reject (the overload SLO guard for ramp and soak),
// -soak-duration N (per-phase cycles),
// -quantum-policy fixed|aimd|feedback (the handler-interval policy for
// ramp and soak),
// -replicas/-tenants/-lb/-hedge-ms/-retry-budget/-zones/-migrate (the
// fleet sweep; -zones spreads replicas across failure domains and
// -migrate drains queued work off crashed or ejected replicas).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/cliflags"
	"repro/internal/experiments"
)

func main() {
	cf := cliflags.New(flag.CommandLine).AddScale().AddSeed().AddEngine().AddObs().AddSLO().AddInterleave().AddFleet().AddQuantum()
	quick := flag.Bool("quick", false, "use a workload subset where supported")
	all := flag.Bool("all", false, "fig9/fig11: include Naive-Cycles and CnB-Cycles")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ciexp [flags] fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|table7|hybrid|allowable|probes|chaos|ramp|soak|fleet|quantum|sanitize|interleave|all\n")
		fmt.Fprintf(os.Stderr, "       ciexp tracecheck FILE\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	if cmd == "tracecheck" {
		if flag.NArg() != 2 {
			flag.Usage()
			os.Exit(2)
		}
		if err := tracecheck(flag.Arg(1)); err != nil {
			fmt.Fprintln(os.Stderr, "ciexp: tracecheck:", err)
			os.Exit(1)
		}
		fmt.Printf("tracecheck: %s OK\n", flag.Arg(1))
		return
	}

	eng, err := cf.Engine()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ciexp:", err)
		os.Exit(1)
	}
	scope := cf.Scope()
	scale := cf.Scale

	run := func(name string, f func() error) {
		if cmd == name || cmd == "all" {
			if e := f(); e != nil && err == nil {
				err = fmt.Errorf("%s: %w", name, e)
			}
		}
	}
	ran := false
	for _, c := range []struct {
		name string
		f    func() error
	}{
		{"fig4", func() error { return experiments.PrintFigure4(os.Stdout, scope) }},
		{"fig5", func() error { return experiments.PrintFigure5(os.Stdout, scope) }},
		{"fig6", func() error { return experiments.PrintFigure6(os.Stdout, scope) }},
		{"fig7", func() error { return experiments.PrintFigure7(os.Stdout, scope) }},
		{"fig8", func() error { return experiments.PrintFigure8(os.Stdout, scope) }},
		{"fig9", func() error { return experiments.PrintFigureOverhead(os.Stdout, eng, 1, scale, *all) }},
		{"fig10", func() error { return experiments.PrintFigure10(os.Stdout, eng, scale) }},
		{"fig11", func() error { return experiments.PrintFigureOverhead(os.Stdout, eng, 32, scale, *all) }},
		{"fig12", func() error { return experiments.PrintFigure12(os.Stdout, eng, scale, *quick) }},
		{"table7", func() error { return experiments.PrintTable7(os.Stdout, eng, scale) }},
		{"hybrid", func() error { return experiments.PrintHybrid(os.Stdout, eng, scale) }},
		{"allowable", func() error { return experiments.PrintAllowable(os.Stdout, eng, scale) }},
		{"probes", func() error { return experiments.PrintProbeCounts(os.Stdout, eng, scale) }},
		{"chaos", func() error {
			rates := experiments.ChaosRates
			if *quick {
				rates = []float64{0.01}
			}
			return experiments.PrintChaos(os.Stdout, cf.Seed, rates)
		}},
		{"ramp", func() error {
			qp, err := cf.ParseQuantum()
			if err != nil {
				return err
			}
			return experiments.PrintRamp(os.Stdout, eng, cf.Seed, cf.SoakDuration*int64(scale), cf.SLO(), qp)
		}},
		{"soak", func() error {
			qp, err := cf.ParseQuantum()
			if err != nil {
				return err
			}
			return experiments.PrintSoak(os.Stdout, eng, cf.Seed, cf.SoakDuration*int64(scale), cf.SLO(), *quick, qp)
		}},
		{"fleet", func() error {
			cfg, err := cf.FleetConfig(cf.SoakDuration)
			if err != nil {
				return err
			}
			return experiments.PrintFleet(os.Stdout, eng, cfg, *quick, int64(scale))
		}},
		{"quantum", func() error { return experiments.PrintQuantum(os.Stdout, eng, scale, *quick) }},
		{"sanitize", func() error { return experiments.PrintSanitize(os.Stdout, eng, scale, *quick) }},
		{"interleave", func() error {
			bound := cf.Bound
			if *quick {
				bound = 1
			}
			return experiments.PrintInterleave(os.Stdout, eng, bound, *quick)
		}},
	} {
		if cmd == c.name || cmd == "all" {
			ran = true
			run(c.name, c.f)
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if eng.Store != nil {
		hits, misses := eng.Store.Skipped()
		if e := eng.Store.Save(); e != nil && err == nil {
			err = e
		}
		fmt.Fprintf(os.Stderr, "ciexp: store %s: %d cell(s) skipped, %d ran fresh\n",
			eng.Store.Path(), hits, misses)
	}
	if e := cf.Finish(os.Stdout); e != nil && err == nil {
		err = e
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ciexp:", err)
		os.Exit(1)
	}
}

// tracecheck validates a Chrome trace_event JSON file without external
// tooling (jq-free, for verify.sh): the document must parse as JSON,
// carry a traceEvents array, and every event must have a name and a
// one-character phase.
func tracecheck(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if !json.Valid(data) {
		return fmt.Errorf("%s: not valid JSON", path)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("%s: missing traceEvents array", path)
	}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" || len(ev.Ph) != 1 {
			return fmt.Errorf("%s: event %d malformed (name=%q ph=%q)", path, i, ev.Name, ev.Ph)
		}
	}
	fmt.Printf("tracecheck: %d events\n", len(doc.TraceEvents))
	return nil
}
