// Command ciexp regenerates the paper's tables and figures from the
// command line:
//
//	ciexp fig4      mTCP throughput/latency vs concurrent connections
//	ciexp fig5      mTCP with per-request compute work
//	ciexp fig6      Shenango latency vs load + miner hash rate
//	ciexp fig7      delegation vs locks, throughput vs threads
//	ciexp fig8      client request latency distribution
//	ciexp fig9      CI-design overhead, 1 thread
//	ciexp fig10     interval accuracy, 1 thread
//	ciexp fig11     CI-design overhead, 32 threads
//	ciexp fig12     CI vs hardware interrupts across intervals
//	ciexp table7    per-benchmark runtimes (PT, CI, Naive × 1/32 threads)
//	ciexp hybrid    hybrid CI + hardware-watchdog extension (§5.4 future work)
//	ciexp allowable §3.3 allowable-error parameter study
//	ciexp probes    §5.4 dynamic probe executions, CI vs Naive
//	ciexp chaos     fault-injection sweep asserting the graceful-
//	                degradation invariants (exits non-zero on violation)
//	ciexp sanitize  translation-validation sweep: stage checks plus the
//	                differential execution oracle over a fuzz corpus and
//	                all workloads (exits non-zero on any divergence)
//
// The workload sweeps run on the parallel experiment engine: -workers N
// shards the cells across N workers (0 = GOMAXPROCS; results are
// byte-identical at any worker count, and -workers 1 reproduces the
// serial pipeline exactly), and -store FILE persists per-cell results
// with content hashes so unchanged cells are skipped on re-runs.
//
// Flags: -scale N (workload size multiplier, default 1),
// -quick (subset of workloads for fig12; single fault rate for chaos;
// smaller fuzz corpus for sanitize), -seed N (chaos fault-plan seed),
// -workers N, -store FILE, -sanitize (route every cache-miss compile in
// any sweep through the translation-validation stage checks).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/engine"
	"repro/internal/experiments"
)

func main() {
	scale := flag.Int("scale", 1, "workload size multiplier")
	quick := flag.Bool("quick", false, "use a workload subset where supported")
	all := flag.Bool("all", false, "fig9/fig11: include Naive-Cycles and CnB-Cycles")
	seed := flag.Uint64("seed", 1, "chaos: fault-plan seed")
	workers := flag.Int("workers", 0, "sweep worker count (0 = GOMAXPROCS, 1 = serial)")
	storePath := flag.String("store", "", "incremental result store (BENCH_*.json); unchanged cells are skipped")
	sanitizeMiss := flag.Bool("sanitize", false, "run stage-by-stage translation validation on every cache-miss compile")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ciexp [flags] fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|table7|hybrid|allowable|probes|chaos|sanitize|all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)

	eng := engine.New(*workers)
	eng.SanitizeOnMiss = *sanitizeMiss
	if *storePath != "" {
		store, err := engine.OpenStore(*storePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ciexp:", err)
			os.Exit(1)
		}
		eng.Store = store
	}

	var err error
	run := func(name string, f func() error) {
		if cmd == name || cmd == "all" {
			if e := f(); e != nil && err == nil {
				err = fmt.Errorf("%s: %w", name, e)
			}
		}
	}
	ran := false
	for _, c := range []struct {
		name string
		f    func() error
	}{
		{"fig4", func() error { return experiments.PrintFigure4(os.Stdout) }},
		{"fig5", func() error { return experiments.PrintFigure5(os.Stdout) }},
		{"fig6", func() error { return experiments.PrintFigure6(os.Stdout) }},
		{"fig7", func() error { return experiments.PrintFigure7(os.Stdout) }},
		{"fig8", func() error { return experiments.PrintFigure8(os.Stdout) }},
		{"fig9", func() error { return experiments.PrintFigureOverhead(os.Stdout, eng, 1, *scale, *all) }},
		{"fig10", func() error { return experiments.PrintFigure10(os.Stdout, eng, *scale) }},
		{"fig11", func() error { return experiments.PrintFigureOverhead(os.Stdout, eng, 32, *scale, *all) }},
		{"fig12", func() error { return experiments.PrintFigure12(os.Stdout, eng, *scale, *quick) }},
		{"table7", func() error { return experiments.PrintTable7(os.Stdout, eng, *scale) }},
		{"hybrid", func() error { return experiments.PrintHybrid(os.Stdout, eng, *scale) }},
		{"allowable", func() error { return experiments.PrintAllowable(os.Stdout, eng, *scale) }},
		{"probes", func() error { return experiments.PrintProbeCounts(os.Stdout, eng, *scale) }},
		{"chaos", func() error {
			rates := experiments.ChaosRates
			if *quick {
				rates = []float64{0.01}
			}
			return experiments.PrintChaos(os.Stdout, *seed, rates)
		}},
		{"sanitize", func() error { return experiments.PrintSanitize(os.Stdout, eng, *scale, *quick) }},
	} {
		if cmd == c.name || cmd == "all" {
			ran = true
			run(c.name, c.f)
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if eng.Store != nil {
		hits, misses := eng.Store.Skipped()
		if e := eng.Store.Save(); e != nil && err == nil {
			err = e
		}
		fmt.Fprintf(os.Stderr, "ciexp: store %s: %d cell(s) skipped, %d ran fresh\n",
			eng.Store.Path(), hits, misses)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ciexp:", err)
		os.Exit(1)
	}
}
