// Command cidump inspects the Compiler Interrupts analysis of a
// textual IR program: per function it prints the hierarchical container
// tree of §3.2 with evaluated costs, the probe marks the analysis
// decided on, the applied loop transforms, and the exported cost table.
// It is the debugging window into the analysis phase.
//
//	cidump [-probe-interval N] [-spacing] [-sanitize] [-hot] program.ir
//
// With -sanitize the program is instead compiled under the
// translation-validation sanitizer: every pipeline stage is verified
// and semantically checked, and the differential execution oracle
// compares the instrumented program against the uninstrumented
// baseline for each probe design. Exits non-zero on any finding.
//
// With -hot the program is compiled with the selected design, run once
// under an observability scope, and the "hottest probe sites" table is
// printed: per IR function/block, how often its probe executed and how
// often it fired the CI handler.
//
// With -interleave the handler interleaving verifier's race table is
// printed instead: every address shared between @handler and -entry,
// classified (atomic, observed, protected, same-value, annotated,
// RACY), plus any schedule whose outcome diverged from the fire-free
// baseline. Exits non-zero on an unclassified race or a
// non-commutative schedule. -bound sets the context bound.
//
// With -fleet (no program argument) the seeded fleet fault plan is
// printed instead: per replica (labelled with its failure-domain zone),
// the exact crash windows `ciexp fleet`'s crash cells will replay at
// -seed, drawn from the same per-replica injector streams, plus — when
// -zones > 1 — the zone-0 correlated outage schedule with its member
// replicas. -replicas sets how many streams to show, -zones the
// failure-domain count, -migrate whether the plan header notes
// drain/re-route, and -fleet-horizon the window in cycles.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/ci/analysis"
	"repro/internal/ci/instrument"
	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/interleave"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/sanitize"
)

func main() {
	cf := cliflags.New(flag.CommandLine).AddDesign().AddCompile().AddSanitize().AddTier().AddInterleave().AddSeed().AddFleet()
	spacing := flag.Bool("spacing", false, "also run the probe-spacing checker on instrumented functions")
	hot := flag.Bool("hot", false, "compile, run once and print the hottest probe sites instead of the analysis dump")
	hotN := flag.Int("hot-n", 20, "number of probe sites to print with -hot (0 = all)")
	interval := flag.Int64("interval", 5000, "-hot: CI interval in cycles")
	entry := flag.String("entry", "main", "-hot: entry function")
	fleetPlan := flag.Bool("fleet", false, "print the seeded fleet crash-plan schedule instead of an analysis dump")
	fleetHorizon := flag.Int64("fleet-horizon", 26_000_000, "-fleet: schedule window in cycles")
	flag.Parse()
	if *fleetPlan {
		experiments.PrintFleetPlan(os.Stdout, cf.Seed, cf.Replicas, cf.Zones, *fleetHorizon, cf.Migrate)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cidump [flags] program.ir")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	m, err := ir.Parse(string(src))
	if err != nil {
		fail("%v", err)
	}
	if cf.Sanitize {
		runSanitize(m, cf.ProbeInterval, cf.AllowableError)
		return
	}
	if cf.Interleave {
		runInterleave(cf, m, *entry, *interval)
		return
	}
	if *hot {
		runHot(cf, m, *entry, *interval, *hotN)
		return
	}
	res := analysis.Analyze(m, analysis.Options{
		ProbeInterval:  cf.ProbeInterval,
		AllowableError: cf.AllowableError,
	})

	names := make([]string, 0, len(res.Funcs))
	for n := range res.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		fr := res.Funcs[name]
		fmt.Printf("== @%s  cost=%s  instrumented=%v  transformed=%d cloned=%d\n",
			name, fr.Cost, fr.Instrumented, fr.LoopsTransformed, fr.LoopsCloned)
		if root := fr.Reduction.Root(); root != nil {
			fmt.Print(indent(root.Dump()))
		} else {
			fmt.Printf("  (not fully reducible: %d regions; §3.6 post-processing applied)\n",
				len(fr.Reduction.Regions))
			for _, r := range fr.Reduction.Regions {
				fmt.Print(indent(r.C.Dump()))
			}
		}
		if len(fr.Marks) > 0 {
			fmt.Printf("  probe marks (%d):\n", len(fr.Marks))
			for _, mk := range fr.Marks {
				kind := "ir"
				if mk.Loop {
					kind = "irloop"
				}
				fmt.Printf("    %-14s @%s+%d inc=%d\n", kind, mk.Block.Name, mk.Index, mk.Inc)
			}
		}
		if *spacing && fr.Instrumented {
			// Materialize probes in place to validate spacing.
			applyMarks(fr)
			if err := analysis.CheckSpacing(fr.Fn, 100, cf.ProbeInterval); err != nil {
				fmt.Printf("  spacing: VIOLATION: %v\n", err)
			} else {
				fmt.Printf("  spacing: ok (max gap %d IR)\n", cf.ProbeInterval)
			}
		}
		fmt.Println()
	}

	fmt.Println("== exported cost table (§2.6)")
	data, err := analysis.ExportCosts(res.Costs)
	if err != nil {
		fail("%v", err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// runInterleave prints the handler interleaving verifier's race table
// for the module: every address shared between @handler and the entry,
// classified, plus the schedules whose outcome diverged from the
// fire-free baseline. Exits non-zero on an unclassified race or a
// non-commutative schedule.
func runInterleave(cf *cliflags.Flags, m *ir.Module, entry string, interval int64) {
	d, err := cf.ParseDesign()
	if err != nil {
		fail("%v", err)
	}
	rep, err := interleave.VerifyHandlers(m, engine.Serial(), interleave.Options{
		Entry:           entry,
		Design:          d,
		ProbeIntervalIR: cf.ProbeInterval,
		IntervalCycles:  interval,
		ContextBound:    cf.Bound,
	})
	if err != nil {
		fail("interleave: %v", err)
	}
	if err := rep.WriteTable(os.Stdout); err != nil {
		fail("%v", err)
	}
	if rep.Err() != nil {
		os.Exit(1)
	}
}

// runSanitize compiles the module under full translation validation for
// every probe design and reports per-design verdicts. Any stage-check
// failure or oracle divergence exits non-zero; an exhausted oracle step
// budget is reported but tolerated (the static checks still ran).
func runSanitize(m *ir.Module, probeInterval, allowable int64) {
	failed := false
	for _, d := range instrument.Designs {
		_, err := sanitize.CompileChecked(m, core.Config{
			Design:           d,
			ProbeIntervalIR:  probeInterval,
			AllowableErrorIR: allowable,
		}, sanitize.Options{Exec: true, AllowInconclusive: true})
		switch {
		case err == nil:
			fmt.Printf("%-14s ok (stage checks + differential oracle)\n", d)
		default:
			failed = true
			fmt.Printf("%-14s FAIL: %v\n", d, err)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runHot compiles with the selected design, runs the entry function
// once with an enabled observability scope, and prints the
// hottest-probe-sites attribution table.
func runHot(cf *cliflags.Flags, m *ir.Module, entry string, interval int64, n int) {
	d, err := cf.ParseDesign()
	if err != nil {
		fail("%v", err)
	}
	tier, err := cf.ParseTier()
	if err != nil {
		fail("%v", err)
	}
	scope := obs.New(0)
	prog, err := core.Compile(m,
		core.WithDesign(d),
		core.WithProbeInterval(cf.ProbeInterval),
		core.WithAllowableError(cf.AllowableError),
		core.WithTier(tier),
		core.WithObs(scope))
	if err != nil {
		fail("%v", err)
	}
	res, err := prog.Run(entry, core.WithInterval(interval))
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("design %s, %d static probes, %d cycles, %d handler calls\n",
		d, prog.Instr.Probes, res.Stats[0].Cycles, res.Stats[0].HandlerCalls)
	if err := scope.WriteHotSites(os.Stdout, n); err != nil {
		fail("%v", err)
	}
}

func applyMarks(fr *analysis.FuncResult) {
	byBlock := map[*ir.Block][]analysis.Mark{}
	for _, mk := range fr.Marks {
		byBlock[mk.Block] = append(byBlock[mk.Block], mk)
	}
	for b, ms := range byBlock {
		sort.Slice(ms, func(i, j int) bool { return ms[i].Index > ms[j].Index })
		for _, mk := range ms {
			kind := ir.ProbeIR
			pi := &ir.ProbeInfo{Kind: kind, Inc: mk.Inc, IndVar: ir.NoReg, Base: ir.NoReg}
			if mk.Loop {
				pi.Kind = ir.ProbeIRLoop
				pi.IndVar, pi.Base = mk.IndVar, mk.Base
			}
			idx := mk.Index
			if idx > len(b.Instrs) {
				idx = len(b.Instrs)
			}
			b.Instrs = append(b.Instrs, ir.Instr{})
			copy(b.Instrs[idx+1:], b.Instrs[idx:])
			b.Instrs[idx] = ir.Instr{Op: ir.OpProbe, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, Probe: pi}
		}
	}
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if i > start {
				out += "  " + s[start:i] + "\n"
			}
			start = i + 1
		}
	}
	return out
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cidump: "+format+"\n", args...)
	os.Exit(1)
}
