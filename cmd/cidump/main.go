// Command cidump inspects the Compiler Interrupts analysis of a
// textual IR program: per function it prints the hierarchical container
// tree of §3.2 with evaluated costs, the probe marks the analysis
// decided on, the applied loop transforms, and the exported cost table.
// It is the debugging window into the analysis phase.
//
//	cidump [-probe-interval N] [-spacing] program.ir
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/ci/analysis"
	"repro/internal/ir"
)

func main() {
	probeInterval := flag.Int64("probe-interval", 250, "compile-time probe interval (IR instructions)")
	allowable := flag.Int64("allowable-error", 0, "allowable error (0 = same as probe interval)")
	spacing := flag.Bool("spacing", false, "also run the probe-spacing checker on instrumented functions")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cidump [flags] program.ir")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	m, err := ir.Parse(string(src))
	if err != nil {
		fail("%v", err)
	}
	res := analysis.Analyze(m, analysis.Options{
		ProbeInterval:  *probeInterval,
		AllowableError: *allowable,
	})

	names := make([]string, 0, len(res.Funcs))
	for n := range res.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		fr := res.Funcs[name]
		fmt.Printf("== @%s  cost=%s  instrumented=%v  transformed=%d cloned=%d\n",
			name, fr.Cost, fr.Instrumented, fr.LoopsTransformed, fr.LoopsCloned)
		if root := fr.Reduction.Root(); root != nil {
			fmt.Print(indent(root.Dump()))
		} else {
			fmt.Printf("  (not fully reducible: %d regions; §3.6 post-processing applied)\n",
				len(fr.Reduction.Regions))
			for _, r := range fr.Reduction.Regions {
				fmt.Print(indent(r.C.Dump()))
			}
		}
		if len(fr.Marks) > 0 {
			fmt.Printf("  probe marks (%d):\n", len(fr.Marks))
			for _, mk := range fr.Marks {
				kind := "ir"
				if mk.Loop {
					kind = "irloop"
				}
				fmt.Printf("    %-14s @%s+%d inc=%d\n", kind, mk.Block.Name, mk.Index, mk.Inc)
			}
		}
		if *spacing && fr.Instrumented {
			// Materialize probes in place to validate spacing.
			applyMarks(fr)
			if err := analysis.CheckSpacing(fr.Fn, 100, *probeInterval); err != nil {
				fmt.Printf("  spacing: VIOLATION: %v\n", err)
			} else {
				fmt.Printf("  spacing: ok (max gap %d IR)\n", *probeInterval)
			}
		}
		fmt.Println()
	}

	fmt.Println("== exported cost table (§2.6)")
	data, err := analysis.ExportCosts(res.Costs)
	if err != nil {
		fail("%v", err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

func applyMarks(fr *analysis.FuncResult) {
	byBlock := map[*ir.Block][]analysis.Mark{}
	for _, mk := range fr.Marks {
		byBlock[mk.Block] = append(byBlock[mk.Block], mk)
	}
	for b, ms := range byBlock {
		sort.Slice(ms, func(i, j int) bool { return ms[i].Index > ms[j].Index })
		for _, mk := range ms {
			kind := ir.ProbeIR
			pi := &ir.ProbeInfo{Kind: kind, Inc: mk.Inc, IndVar: ir.NoReg, Base: ir.NoReg}
			if mk.Loop {
				pi.Kind = ir.ProbeIRLoop
				pi.IndVar, pi.Base = mk.IndVar, mk.Base
			}
			idx := mk.Index
			if idx > len(b.Instrs) {
				idx = len(b.Instrs)
			}
			b.Instrs = append(b.Instrs, ir.Instr{})
			copy(b.Instrs[idx+1:], b.Instrs[idx:])
			b.Instrs[idx] = ir.Instr{Op: ir.OpProbe, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, Probe: pi}
		}
	}
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if i > start {
				out += "  " + s[start:i] + "\n"
			}
			start = i + 1
		}
	}
	return out
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cidump: "+format+"\n", args...)
	os.Exit(1)
}
