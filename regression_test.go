// Benchmark regression gate: a fresh overhead sweep is compared
// against the committed BENCH_baseline.json store and the test fails
// when any (workload, design) cell regressed by more than 10%. The VM
// is deterministic, so on unchanged code the fresh numbers match the
// baseline exactly; the 10% band absorbs intentional perf-model tweaks
// without churning the baseline on every commit.
//
// Updating the baseline after an intended performance change:
//
//	go test -run TestSweepRegressionBaseline -update-baseline .
//	git diff BENCH_baseline.json   # review the movement, then commit
package repro

import (
	"encoding/json"
	"flag"
	"fmt"
	"testing"

	"repro/internal/ci/instrument"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/fleet"
)

var updateBaseline = flag.Bool("update-baseline", false, "rewrite BENCH_baseline.json from current measurements")

const baselinePath = "BENCH_baseline.json"

// baselineSubset mirrors the determinism test's selection: one
// workload per suite tier, quick enough to run on every `go test`.
var baselineNames = []string{"radix", "histogram", "volrend", "kmeans"}

var baselineDesigns = []instrument.Design{
	instrument.CI, instrument.CnB, instrument.Naive,
}

// Overload-plane gate: the admission-on load-ramp rows' reject
// fractions and shed-event counts at the standard seed, stored in the
// same BENCH_baseline.json. The plane is deterministic, so unchanged
// code reproduces the baseline exactly; the bands absorb intentional
// controller tuning. Both directions are gated — shedding much more
// than baseline wastes goodput, shedding much less means admission
// stopped protecting the tail.
const (
	overloadBaselineKey  = "overload/ramp"
	overloadBaselineHash = "seed=1,dur=26000000,v1"
	overloadRampCycles   = 26_000_000
)

type overloadBaselineRow struct {
	Mult        float64
	RejectFrac  float64
	Rejected    int64
	Expired     int64
	Shed        int64
	MinerShed   float64
	MaxBrownout int
}

func measureOverloadBaseline(t *testing.T) []overloadBaselineRow {
	t.Helper()
	rows, errs := experiments.MeasureLoadRamp(engine.New(0), 1, overloadRampCycles, nil, nil)
	if len(errs) > 0 {
		t.Fatalf("ramp cells failed: %v", errs)
	}
	var out []overloadBaselineRow
	for _, r := range rows {
		if !r.Admission {
			continue
		}
		s := r.Res.Overload
		out = append(out, overloadBaselineRow{
			Mult: r.Mult, RejectFrac: s.RejectFrac(), Rejected: s.Rejected,
			Expired: s.Expired, Shed: s.Shed, MinerShed: r.Res.MinerShedFrac,
			MaxBrownout: s.MaxBrownout,
		})
	}
	return out
}

// countInBand reports whether got is within the relative band of want,
// with an absolute floor so near-zero counts don't trip on small moves.
func countInBand(got, want, floor int64, relBand float64) bool {
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	limit := int64(float64(want)*relBand) + floor
	return diff <= limit
}

func TestOverloadRegressionBaseline(t *testing.T) {
	got := measureOverloadBaseline(t)
	if len(got) == 0 {
		t.Fatal("no admission-enabled ramp rows measured")
	}

	if *updateBaseline {
		store, err := engine.OpenStore(baselinePath)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Put(overloadBaselineKey, overloadBaselineHash, got); err != nil {
			t.Fatal(err)
		}
		if err := store.Save(); err != nil {
			t.Fatal(err)
		}
		t.Logf("overload baseline rewritten: %s cell %q", baselinePath, overloadBaselineKey)
		return
	}

	store, err := engine.OpenStore(baselinePath)
	if err != nil {
		t.Fatal(err)
	}
	cell, ok := store.Cell(overloadBaselineKey)
	if !ok {
		t.Fatalf("baseline lacks cell %q; regenerate with -update-baseline", overloadBaselineKey)
	}
	var want []overloadBaselineRow
	if err := json.Unmarshal(cell.Data, &want); err != nil {
		t.Fatalf("baseline cell %q: %v", overloadBaselineKey, err)
	}
	if len(got) != len(want) {
		t.Fatalf("fresh ramp has %d admission rows, baseline %d — regenerate it", len(got), len(want))
	}
	for i, g := range got {
		w := want[i]
		if g.Mult != w.Mult {
			t.Errorf("row %d: mult %.1f vs baseline %.1f — baseline is stale", i, g.Mult, w.Mult)
			continue
		}
		if d := g.RejectFrac - w.RejectFrac; d > 0.05 || d < -0.05 {
			t.Errorf("%.1fx: reject fraction %.3f vs baseline %.3f (band ±0.05)",
				g.Mult, g.RejectFrac, w.RejectFrac)
		}
		if !countInBand(g.Rejected, w.Rejected, 64, 0.25) {
			t.Errorf("%.1fx: rejected %d vs baseline %d (band ±25%%)", g.Mult, g.Rejected, w.Rejected)
		}
		if !countInBand(g.Expired, w.Expired, 64, 0.25) {
			t.Errorf("%.1fx: expired %d vs baseline %d (band ±25%%)", g.Mult, g.Expired, w.Expired)
		}
		if !countInBand(g.Shed, w.Shed, 64, 0.25) {
			t.Errorf("%.1fx: shed %d vs baseline %d (band ±25%%)", g.Mult, g.Shed, w.Shed)
		}
		if (w.MinerShed > 0) != (g.MinerShed > 0) {
			t.Errorf("%.1fx: miner shedding flipped: %.3f vs baseline %.3f", g.Mult, g.MinerShed, w.MinerShed)
		}
		if g.MaxBrownout != w.MaxBrownout {
			t.Errorf("%.1fx: max brownout %d vs baseline %d", g.Mult, g.MaxBrownout, w.MaxBrownout)
		}
	}
}

// Fleet-resilience gate: the crash-soak sweep's accounting at the
// standard seed, stored in the same BENCH_baseline.json. The fleet is
// deterministic, so unchanged code reproduces the baseline exactly;
// the bands absorb intentional balancer/retry tuning. Retry
// amplification is gated hard at the budget ceiling in every cell —
// that bound holds by construction, so exceeding it means the budget
// accounting broke, never the workload shifting.
const (
	fleetBaselineKey  = "fleet/ramp"
	fleetBaselineHash = "seed=1,replicas=8,tenants=4,lb=p2c,dur=26000000,v1"
	fleetRampCycles   = 26_000_000
)

// fleetBaselineConfig mirrors `ciexp fleet`'s defaults: 8 replicas
// under p2c, 4 tenants with tenant 0 misbehaving, hedging at a 0.1 ms
// floor, the standard retry budget.
func fleetBaselineConfig() fleet.Config {
	return fleet.Config{
		Replicas:          8,
		Tenants:           4,
		Policy:            fleet.P2CDeadline,
		Seed:              1,
		HorizonCycles:     fleetRampCycles,
		RetryBudgetFrac:   0.1,
		HedgeDelayCycles:  260_000,
		MisbehavingTenant: 0,
	}
}

type fleetBaselineRow struct {
	Load       float64
	Crash      bool
	Injected   int64
	Served     int64
	Retries    int64
	Hedges     int64
	Crashes    int64
	Ejections  int64
	FailedPerm int64
}

func measureFleetBaseline(t *testing.T) []fleetBaselineRow {
	t.Helper()
	rows, errs := experiments.MeasureFleetRamp(engine.New(0), fleetBaselineConfig(), nil)
	if len(errs) > 0 {
		t.Fatalf("fleet cells failed: %v", errs)
	}
	var out []fleetBaselineRow
	for _, r := range rows {
		if amp := r.Res.Amplification(); amp > experiments.FleetAmpCeiling+1e-9 {
			t.Errorf("%.1fx crash=%t: retry amplification %.3f exceeds the %.2f budget bound",
				r.Load, r.Crash, amp, experiments.FleetAmpCeiling)
		}
		out = append(out, fleetBaselineRow{
			Load: r.Load, Crash: r.Crash,
			Injected: r.Res.Injected, Served: r.Res.Served,
			Retries: r.Res.Retries, Hedges: r.Res.Hedges,
			Crashes: r.Res.Crashes, Ejections: r.Res.Ejections,
			FailedPerm: r.Res.FailedPerm,
		})
	}
	return out
}

// Zone-outage and scale cells: the migration + zone layer's accounting
// at the standard seed. The zone pair re-runs `ciexp fleet`'s headline
// (1-of-4 zones crash-looping at 1.2x with migration on) and enforces
// CheckFleetZone's gates unconditionally — goodput floor, zero
// stranded attempts, amplification ceiling — baseline or not. The
// scale cell is a shrunk (scale 2) FleetScaleConfig soak whose
// serial-vs-pool fingerprint identity is likewise enforced
// unconditionally; the canonical 10M-request run stays behind
// `ciexp -scale 42 fleet`.
const (
	fleetZoneBaselineKey   = "fleet/zone"
	fleetZoneBaselineHash  = "seed=1,replicas=8,zones=4,migrate=1,dur=26000000,v1"
	fleetScaleBaselineKey  = "fleet/scale"
	fleetScaleBaselineHash = "seed=1,replicas=64,zones=4,scale=2,v1"
	fleetScaleTestScale    = 2
)

type fleetZoneBaselineRow struct {
	Outage          bool
	Injected        int64
	Served          int64
	Migrated        int64
	MigrationFailed int64
	ZoneCrashes     int64
	Ejections       int64
}

func measureFleetZoneBaseline(t *testing.T) []fleetZoneBaselineRow {
	t.Helper()
	noOutage, outage, errs := experiments.MeasureFleetZone(engine.New(0), fleetBaselineConfig())
	if len(errs) > 0 {
		t.Fatalf("zone cells failed: %v", errs)
	}
	for _, v := range experiments.CheckFleetZone(noOutage, outage) {
		t.Errorf("zone gate violation: %s", v)
	}
	var out []fleetZoneBaselineRow
	for _, p := range []struct {
		outage bool
		res    *fleet.Result
	}{{false, noOutage}, {true, outage}} {
		out = append(out, fleetZoneBaselineRow{
			Outage: p.outage, Injected: p.res.Injected, Served: p.res.Served,
			Migrated: p.res.Migrated, MigrationFailed: p.res.MigrationFailed,
			ZoneCrashes: p.res.ZoneCrashes, Ejections: p.res.Ejections,
		})
	}
	return out
}

func measureFleetScaleBaseline(t *testing.T) fleetZoneBaselineRow {
	t.Helper()
	cfg := experiments.FleetScaleConfig(1, fleetScaleTestScale)
	serial := fleet.Run(cfg, nil)
	if err := serial.Conservation(); err != nil {
		t.Errorf("scale soak conservation: %v", err)
	}
	if parallel := fleet.Run(cfg, engine.NewPool(4)); parallel.Fingerprint() != serial.Fingerprint() {
		t.Errorf("scale soak diverges across worker counts: %x != serial %x",
			parallel.Fingerprint(), serial.Fingerprint())
	}
	return fleetZoneBaselineRow{
		Outage: true, Injected: serial.Injected, Served: serial.Served,
		Migrated: serial.Migrated, MigrationFailed: serial.MigrationFailed,
		ZoneCrashes: serial.ZoneCrashes, Ejections: serial.Ejections,
	}
}

// compareFleetZoneRow gates one measured row against its baseline twin:
// injected counts exactly (the arrival process is untouched by
// serving-side changes), the serving/migration counts inside bands.
func compareFleetZoneRow(t *testing.T, tag string, g, w fleetZoneBaselineRow) {
	t.Helper()
	if g.Injected != w.Injected {
		t.Errorf("%s: injected %d vs baseline %d — workload generator changed, regenerate the baseline",
			tag, g.Injected, w.Injected)
	}
	if !countInBand(g.Served, w.Served, 64, 0.10) {
		t.Errorf("%s: served %d vs baseline %d (band ±10%%)", tag, g.Served, w.Served)
	}
	if !countInBand(g.Migrated, w.Migrated, 64, 0.25) {
		t.Errorf("%s: migrated %d vs baseline %d (band ±25%%)", tag, g.Migrated, w.Migrated)
	}
	if !countInBand(g.MigrationFailed, w.MigrationFailed, 16, 0.25) {
		t.Errorf("%s: migration-failed %d vs baseline %d (band ±25%%)", tag, g.MigrationFailed, w.MigrationFailed)
	}
	if g.ZoneCrashes != w.ZoneCrashes {
		t.Errorf("%s: zone crashes %d vs baseline %d — the pre-drawn zone schedule changed, regenerate the baseline",
			tag, g.ZoneCrashes, w.ZoneCrashes)
	}
	if !countInBand(g.Ejections, w.Ejections, 2, 0.25) {
		t.Errorf("%s: ejections %d vs baseline %d (band ±25%%)", tag, g.Ejections, w.Ejections)
	}
}

func TestFleetRegressionBaseline(t *testing.T) {
	got := measureFleetBaseline(t)
	if len(got) == 0 {
		t.Fatal("no fleet rows measured")
	}
	zone := measureFleetZoneBaseline(t)
	scale := measureFleetScaleBaseline(t)

	if *updateBaseline {
		store, err := engine.OpenStore(baselinePath)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Put(fleetBaselineKey, fleetBaselineHash, got); err != nil {
			t.Fatal(err)
		}
		if err := store.Put(fleetZoneBaselineKey, fleetZoneBaselineHash, zone); err != nil {
			t.Fatal(err)
		}
		if err := store.Put(fleetScaleBaselineKey, fleetScaleBaselineHash, scale); err != nil {
			t.Fatal(err)
		}
		if err := store.Save(); err != nil {
			t.Fatal(err)
		}
		t.Logf("fleet baselines rewritten: %s cells %q, %q, %q",
			baselinePath, fleetBaselineKey, fleetZoneBaselineKey, fleetScaleBaselineKey)
		return
	}

	store, err := engine.OpenStore(baselinePath)
	if err != nil {
		t.Fatal(err)
	}

	zcell, ok := store.Cell(fleetZoneBaselineKey)
	if !ok {
		t.Fatalf("baseline lacks cell %q; regenerate with -update-baseline", fleetZoneBaselineKey)
	}
	var wantZone []fleetZoneBaselineRow
	if err := json.Unmarshal(zcell.Data, &wantZone); err != nil {
		t.Fatalf("baseline cell %q: %v", fleetZoneBaselineKey, err)
	}
	if len(zone) != len(wantZone) {
		t.Fatalf("zone pair has %d rows, baseline %d — regenerate it", len(zone), len(wantZone))
	}
	for i, g := range zone {
		compareFleetZoneRow(t, fmt.Sprintf("zone outage=%t", g.Outage), g, wantZone[i])
	}

	scell, ok := store.Cell(fleetScaleBaselineKey)
	if !ok {
		t.Fatalf("baseline lacks cell %q; regenerate with -update-baseline", fleetScaleBaselineKey)
	}
	var wantScale fleetZoneBaselineRow
	if err := json.Unmarshal(scell.Data, &wantScale); err != nil {
		t.Fatalf("baseline cell %q: %v", fleetScaleBaselineKey, err)
	}
	compareFleetZoneRow(t, "scale soak", scale, wantScale)

	cell, ok := store.Cell(fleetBaselineKey)
	if !ok {
		t.Fatalf("baseline lacks cell %q; regenerate with -update-baseline", fleetBaselineKey)
	}
	var want []fleetBaselineRow
	if err := json.Unmarshal(cell.Data, &want); err != nil {
		t.Fatalf("baseline cell %q: %v", fleetBaselineKey, err)
	}
	if len(got) != len(want) {
		t.Fatalf("fresh sweep has %d rows, baseline %d — regenerate it", len(got), len(want))
	}
	for i, g := range got {
		w := want[i]
		if g.Load != w.Load || g.Crash != w.Crash {
			t.Errorf("row %d: (%.1fx, crash=%t) vs baseline (%.1fx, crash=%t) — baseline is stale",
				i, g.Load, g.Crash, w.Load, w.Crash)
			continue
		}
		tag := fmt.Sprintf("%.1fx crash=%t", g.Load, g.Crash)
		// The arrival process is untouched by serving-side changes, so
		// injected counts must reproduce exactly.
		if g.Injected != w.Injected {
			t.Errorf("%s: injected %d vs baseline %d — workload generator changed, regenerate the baseline",
				tag, g.Injected, w.Injected)
		}
		if !countInBand(g.Served, w.Served, 64, 0.10) {
			t.Errorf("%s: served %d vs baseline %d (band ±10%%)", tag, g.Served, w.Served)
		}
		if !countInBand(g.Retries, w.Retries, 64, 0.25) {
			t.Errorf("%s: retries %d vs baseline %d (band ±25%%)", tag, g.Retries, w.Retries)
		}
		if !countInBand(g.Hedges, w.Hedges, 64, 0.25) {
			t.Errorf("%s: hedges %d vs baseline %d (band ±25%%)", tag, g.Hedges, w.Hedges)
		}
		if !countInBand(g.FailedPerm, w.FailedPerm, 64, 0.25) {
			t.Errorf("%s: failed-perm %d vs baseline %d (band ±25%%)", tag, g.FailedPerm, w.FailedPerm)
		}
		if !countInBand(g.Crashes, w.Crashes, 2, 0.25) {
			t.Errorf("%s: crashes %d vs baseline %d (band ±25%%)", tag, g.Crashes, w.Crashes)
		}
		if !countInBand(g.Ejections, w.Ejections, 2, 0.25) {
			t.Errorf("%s: ejections %d vs baseline %d (band ±25%%)", tag, g.Ejections, w.Ejections)
		}
	}
}

// Quantum-adaptivity gate: the aggregate (design, policy) rows of the
// `ciexp quantum` figure over the baseline workload subset, stored in
// the same BENCH_baseline.json. The sweep is deterministic (every
// variant re-seeds the request-class stream), so unchanged code
// reproduces the baseline exactly; the bands absorb intentional
// policy-tuning. CheckQuantum's acceptance gates — FeedbackPID beating
// the fixed quantum on p99.9 gap error within the CI overhead budget —
// are enforced unconditionally, baseline or not.
const (
	quantumBaselineKey  = "quantum/ramp"
	quantumBaselineHash = "names=radix,histogram,volrend,kmeans,scale=1,v1"
)

func measureQuantumBaseline(t *testing.T) *experiments.QuantumFigure {
	t.Helper()
	fig, err := experiments.MeasureQuantum(engine.New(0), 1, baselineNames)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Errs) > 0 {
		t.Fatalf("quantum cells failed: %v", fig.Errs)
	}
	for _, v := range fig.CheckQuantum() {
		t.Errorf("quantum gate violation: %s", v)
	}
	return fig
}

func TestQuantumRegressionBaseline(t *testing.T) {
	fig := measureQuantumBaseline(t)
	got := fig.Agg
	if len(got) == 0 {
		t.Fatal("no quantum aggregate rows measured")
	}

	if *updateBaseline {
		store, err := engine.OpenStore(baselinePath)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Put(quantumBaselineKey, quantumBaselineHash, got); err != nil {
			t.Fatal(err)
		}
		if err := store.Save(); err != nil {
			t.Fatal(err)
		}
		t.Logf("quantum baseline rewritten: %s cell %q", baselinePath, quantumBaselineKey)
		return
	}

	store, err := engine.OpenStore(baselinePath)
	if err != nil {
		t.Fatal(err)
	}
	cell, ok := store.Cell(quantumBaselineKey)
	if !ok {
		t.Fatalf("baseline lacks cell %q; regenerate with -update-baseline", quantumBaselineKey)
	}
	var want []experiments.QuantumRow
	if err := json.Unmarshal(cell.Data, &want); err != nil {
		t.Fatalf("baseline cell %q: %v", quantumBaselineKey, err)
	}
	if len(got) != len(want) {
		t.Fatalf("fresh sweep has %d variant rows, baseline %d — regenerate it", len(got), len(want))
	}
	for i, g := range got {
		w := want[i]
		if g.Design != w.Design || g.Policy != w.Policy {
			t.Errorf("row %d: %s/%s vs baseline %s/%s — baseline is stale, regenerate it",
				i, g.Design, g.Policy, w.Design, w.Policy)
			continue
		}
		tag := g.Design + "/" + g.Policy
		if !countInBand(g.P999Err, w.P999Err, 256, 0.25) {
			t.Errorf("%s: p99.9 gap error %d vs baseline %d (band ±25%%)", tag, g.P999Err, w.P999Err)
		}
		if !countInBand(g.Fires, w.Fires, 64, 0.25) {
			t.Errorf("%s: fires %d vs baseline %d (band ±25%%)", tag, g.Fires, w.Fires)
		}
		if !countInBand(g.Overruns, w.Overruns, 64, 0.25) {
			t.Errorf("%s: overruns %d vs baseline %d (band ±25%%)", tag, g.Overruns, w.Overruns)
		}
		// Overhead regression = the delivery mechanism got pricier.
		if d := g.Overhead - w.Overhead; d > 0.02 {
			t.Errorf("%s: overhead %.4f vs baseline %.4f (band +2 points)", tag, g.Overhead, w.Overhead)
		}
	}
}

func TestSweepRegressionBaseline(t *testing.T) {
	sel, err := experiments.WorkloadsByName(baselineNames)
	if err != nil {
		t.Fatal(err)
	}

	if *updateBaseline {
		store, err := engine.OpenStore(baselinePath)
		if err != nil {
			t.Fatal(err)
		}
		eng := engine.New(0)
		eng.Store = store
		fig := experiments.MeasureFigureOverheadSel(eng, 1, 1, baselineDesigns, sel)
		if len(fig.Errs) > 0 {
			t.Fatalf("cannot baseline a failing sweep: %v", fig.Errs)
		}
		if err := store.Save(); err != nil {
			t.Fatal(err)
		}
		t.Logf("baseline rewritten: %s (%d cells)", baselinePath, len(store.Keys()))
		return
	}

	// Fresh measurement, no store: nothing is skipped.
	fig := experiments.MeasureFigureOverheadSel(engine.New(0), 1, 1, baselineDesigns, sel)
	if len(fig.Errs) > 0 {
		t.Fatalf("sweep cells failed: %v", fig.Errs)
	}

	store, err := engine.OpenStore(baselinePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(store.Keys()) == 0 {
		t.Fatalf("%s missing or empty; regenerate with -update-baseline", baselinePath)
	}
	for _, name := range baselineNames {
		key := fmt.Sprintf("overhead/t1/%s", name)
		cell, ok := store.Cell(key)
		if !ok {
			t.Errorf("baseline lacks cell %q; regenerate with -update-baseline", key)
			continue
		}
		var want []experiments.OverheadRow
		if err := json.Unmarshal(cell.Data, &want); err != nil {
			t.Errorf("baseline cell %q: %v", key, err)
			continue
		}
		got, ok := fig.Rows[name]
		if !ok || len(got) != len(want) {
			t.Errorf("%s: fresh sweep has %d rows, baseline %d", name, len(got), len(want))
			continue
		}
		for di, g := range got {
			w := want[di]
			if g.Design != w.Design {
				t.Errorf("%s[%d]: design %v vs baseline %v — baseline is stale, regenerate it",
					name, di, g.Design, w.Design)
				continue
			}
			// Regression = overhead grew. Compare with 10% relative
			// tolerance plus a small absolute floor so near-zero
			// overheads don't trip on rounding.
			limit := w.Overhead*1.10 + 0.002
			if g.Overhead > limit {
				t.Errorf("%s/%v regressed: overhead %.4f > baseline %.4f (+10%%)",
					name, g.Design, g.Overhead, w.Overhead)
			}
			if g.Overhead < w.Overhead*0.90-0.002 {
				t.Logf("%s/%v improved past the band (%.4f vs %.4f); consider -update-baseline",
					name, g.Design, g.Overhead, w.Overhead)
			}
		}
	}
}

// Compiled-tier speed gate: the closure-threaded tier must stay
// decisively faster than the interpreter on the Table-7 subset, with
// bit-identical instruction counts (the speedup of a diverging tier
// would be meaningless). The measured rates live in BENCH_baseline.json
// under tier/steps for trend review.
//
// The floor is a measured, calibrated number, not the ROADMAP's
// original ≥5x aspiration: the interpreter already retires a simulated
// instruction in ~9 host cycles, and a dispatch-floor calibration
// (µop-switch and closure-chain micro-interpreters both bottom out
// near 2.2–2.6ns/op in Go) bounds any in-process tier to low single
// digits. See EXPERIMENTS.md for the measurement recipe and DESIGN.md
// §12 for the superblock design that gets the tier to its current
// 1.4–1.8x. The gate exists to catch the tier regressing toward
// interpreter parity (e.g. superblock detection silently breaking),
// with a band loose enough for shared-runner noise.
const (
	tierStepsKey   = "tier/steps"
	tierStepsScale = 8
	// Worst observed full-set speedup is ~1.4x on an unloaded host;
	// 1.15 leaves headroom for noisy runners while still failing hard
	// if superblocks or fusion stop engaging (which lands at ~1.0x).
	tierSpeedupFloor = 1.15
)

func tierStepsHash() string {
	return fmt.Sprintf("names=%v,scale=%d,pi=250,v1", baselineNames, tierStepsScale)
}

func TestCompiledTierSpeedup(t *testing.T) {
	got, err := experiments.MeasureTierSteps(engine.New(0), baselineNames, tierStepsScale)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tier steps: %d instrs, interp %.1f M/s, compiled %.1f M/s, speedup %.2fx",
		got.Instrs, got.InterpStepsPerSec/1e6, got.CompiledStepsPerSec/1e6, got.Speedup)

	if *updateBaseline {
		store, err := engine.OpenStore(baselinePath)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Put(tierStepsKey, tierStepsHash(), got); err != nil {
			t.Fatal(err)
		}
		if err := store.Save(); err != nil {
			t.Fatal(err)
		}
		t.Logf("tier baseline rewritten: %s cell %q", baselinePath, tierStepsKey)
		return
	}

	store, err := engine.OpenStore(baselinePath)
	if err != nil {
		t.Fatal(err)
	}
	cell, ok := store.Cell(tierStepsKey)
	if !ok {
		t.Fatalf("baseline lacks cell %q; regenerate with -update-baseline", tierStepsKey)
	}
	var want experiments.TierSteps
	if err := json.Unmarshal(cell.Data, &want); err != nil {
		t.Fatalf("baseline cell %q: %v", tierStepsKey, err)
	}
	// The VM is deterministic: a changed instruction count means the
	// measured programs changed and the baseline cell is stale.
	if got.Instrs != want.Instrs {
		t.Errorf("measured %d instrs, baseline %d — workload or instrumentation changed, regenerate the baseline",
			got.Instrs, want.Instrs)
	}
	if got.Speedup < tierSpeedupFloor {
		t.Errorf("compiled tier speedup %.2fx below floor %.2fx (baseline %.2fx) — fast path regressed",
			got.Speedup, tierSpeedupFloor, want.Speedup)
	}
	if got.Speedup > want.Speedup*1.25 {
		t.Logf("speedup improved well past baseline (%.2fx vs %.2fx); consider -update-baseline",
			got.Speedup, want.Speedup)
	}
}
