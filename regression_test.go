// Benchmark regression gate: a fresh overhead sweep is compared
// against the committed BENCH_baseline.json store and the test fails
// when any (workload, design) cell regressed by more than 10%. The VM
// is deterministic, so on unchanged code the fresh numbers match the
// baseline exactly; the 10% band absorbs intentional perf-model tweaks
// without churning the baseline on every commit.
//
// Updating the baseline after an intended performance change:
//
//	go test -run TestSweepRegressionBaseline -update-baseline .
//	git diff BENCH_baseline.json   # review the movement, then commit
package repro

import (
	"encoding/json"
	"flag"
	"fmt"
	"testing"

	"repro/internal/ci/instrument"
	"repro/internal/engine"
	"repro/internal/experiments"
)

var updateBaseline = flag.Bool("update-baseline", false, "rewrite BENCH_baseline.json from current measurements")

const baselinePath = "BENCH_baseline.json"

// baselineSubset mirrors the determinism test's selection: one
// workload per suite tier, quick enough to run on every `go test`.
var baselineNames = []string{"radix", "histogram", "volrend", "kmeans"}

var baselineDesigns = []instrument.Design{
	instrument.CI, instrument.CnB, instrument.Naive,
}

func TestSweepRegressionBaseline(t *testing.T) {
	sel, err := experiments.WorkloadsByName(baselineNames)
	if err != nil {
		t.Fatal(err)
	}

	if *updateBaseline {
		store, err := engine.OpenStore(baselinePath)
		if err != nil {
			t.Fatal(err)
		}
		eng := engine.New(0)
		eng.Store = store
		fig := experiments.MeasureFigureOverheadSel(eng, 1, 1, baselineDesigns, sel)
		if len(fig.Errs) > 0 {
			t.Fatalf("cannot baseline a failing sweep: %v", fig.Errs)
		}
		if err := store.Save(); err != nil {
			t.Fatal(err)
		}
		t.Logf("baseline rewritten: %s (%d cells)", baselinePath, len(store.Keys()))
		return
	}

	// Fresh measurement, no store: nothing is skipped.
	fig := experiments.MeasureFigureOverheadSel(engine.New(0), 1, 1, baselineDesigns, sel)
	if len(fig.Errs) > 0 {
		t.Fatalf("sweep cells failed: %v", fig.Errs)
	}

	store, err := engine.OpenStore(baselinePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(store.Keys()) == 0 {
		t.Fatalf("%s missing or empty; regenerate with -update-baseline", baselinePath)
	}
	for _, name := range baselineNames {
		key := fmt.Sprintf("overhead/t1/%s", name)
		cell, ok := store.Cell(key)
		if !ok {
			t.Errorf("baseline lacks cell %q; regenerate with -update-baseline", key)
			continue
		}
		var want []experiments.OverheadRow
		if err := json.Unmarshal(cell.Data, &want); err != nil {
			t.Errorf("baseline cell %q: %v", key, err)
			continue
		}
		got, ok := fig.Rows[name]
		if !ok || len(got) != len(want) {
			t.Errorf("%s: fresh sweep has %d rows, baseline %d", name, len(got), len(want))
			continue
		}
		for di, g := range got {
			w := want[di]
			if g.Design != w.Design {
				t.Errorf("%s[%d]: design %v vs baseline %v — baseline is stale, regenerate it",
					name, di, g.Design, w.Design)
				continue
			}
			// Regression = overhead grew. Compare with 10% relative
			// tolerance plus a small absolute floor so near-zero
			// overheads don't trip on rounding.
			limit := w.Overhead*1.10 + 0.002
			if g.Overhead > limit {
				t.Errorf("%s/%v regressed: overhead %.4f > baseline %.4f (+10%%)",
					name, g.Design, g.Overhead, w.Overhead)
			}
			if g.Overhead < w.Overhead*0.90-0.002 {
				t.Logf("%s/%v improved past the band (%.4f vs %.4f); consider -update-baseline",
					name, g.Design, g.Overhead, w.Overhead)
			}
		}
	}
}
