#!/bin/sh
# Repo verification gate: formatting, static checks, build, tests, and
# a quick chaos smoke run (fault-injection invariants at a 1% rate).
# Run from the repo root; exits non-zero on the first failure.
set -eu
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
# The race gate keeps the parallel experiment engine honest: every
# sweep shards cells across workers sharing memoized modules and
# read-only baselines, so the whole suite must stay race-clean.
go test -race ./...

echo "== chaos smoke =="
go run ./cmd/ciexp -quick chaos

echo "== soak smoke =="
# Overload plane end-to-end: saturation and 2x-overload phases with
# chaos composed in must hold the SLO guard (-slo-p999us/-max-reject
# defaults); ciexp exits non-zero on any violated phase.
go run ./cmd/ciexp -quick soak

echo "== fleet smoke =="
# Fleet resilience end-to-end: a small cluster at the 1.2x soak load
# with replica 0 crashing mid-run; the conservation oracle, the
# resilience guards (goodput floor, retry amplification, tenant SLO)
# and the serial-vs-workers byte-identity check all run inside, plus
# the zone-outage headline (fixed 8-replica/4-zone shape); ciexp exits
# non-zero on any violation.
go run ./cmd/ciexp -quick -replicas 4 fleet

echo "== zone-outage smoke =="
# Correlated-outage end-to-end through the flag plumbing: the crash
# soak itself runs with replicas spread across 2 failure domains and
# migration on (queued work drains off crashed/ejected replicas and
# re-routes), so the extended oracle identities — migration
# disposition, served-once, zero stranded attempts — and the
# worker-count byte-identity check all see a migrating fleet; the
# 1-of-4-zone outage headline gates goodput at the 90% floor and
# retry amplification at 1.15.
go run ./cmd/ciexp -quick -zones 2 -migrate fleet

echo "== sanitize smoke =="
# Translation validation end-to-end: stage-by-stage semantic checks and
# the differential execution oracle over a fuzz corpus + all workloads.
go run ./cmd/ciexp -quick sanitize

echo "== tier smoke =="
# Tier differential end-to-end: the same sanitize sweep with the
# compiled tier selected additionally runs every corpus program under
# both tiers and cross-checks store streams, returns, final memory,
# fire counts, and exact Stats parity (the tier oracle). The -race
# suite above already covers the compiled tier's deopt path via the
# tier-parameterized VM conformance tests.
go run ./cmd/ciexp -quick -tier=compiled sanitize

echo "== quantum smoke =="
# Quantum adaptivity end-to-end: the handler-gap figure across interval
# policies (fixed/AIMD/feedback) and all four designs on the quick
# workload subset; ciexp exits non-zero when the feedback controller
# stops beating the fixed quantum or the CI rows leave the overhead
# budget.
go run ./cmd/ciexp -quick quantum

echo "== interleave smoke =="
# Handler interleaving verifier end-to-end: context-bound-1 exploration
# over the three app sharing-protocol models and a fuzz corpus with
# generated handlers; ciexp exits non-zero on an unclassified race or a
# non-commutative schedule.
go run ./cmd/ciexp -quick interleave

echo "== trace smoke =="
# Observability end-to-end: a figure run with -trace must emit a
# well-formed Chrome trace_event JSON (validated in Go; no jq needed).
trace_tmp="${TMPDIR:-/tmp}/ciexp-trace-smoke.json"
go run ./cmd/ciexp -quick -trace "$trace_tmp" -metrics fig10 > /dev/null
go run ./cmd/ciexp tracecheck "$trace_tmp"
rm -f "$trace_tmp"

echo "verify: OK"
