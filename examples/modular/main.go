// Modular demonstrates §2.6: two build units compiled separately with
// Compiler Interrupts — a library whose cost file is exported, and an
// application that imports the library's functions plus that cost
// metadata — linked into one program whose interrupts keep their
// cadence across the module boundary.
//
//	go run ./examples/modular
package main

import (
	"fmt"
	"log"

	"repro/internal/ci/analysis"
	"repro/internal/ci/instrument"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/vm"
)

const libSrc = `
module mathlib
func @dot8(%base) {
entry:
  %s = mov 0
  %i = mov 0
  jmp head
head:
  %c = lt %i, 8
  br %c, body, exit
body:
  %a = add %base, %i
  %m = and %a, 1023
  %v = load %m, 0
  %p = mul %v, %v
  %s = add %s, %p
  %i = add %i, 1
  jmp head
exit:
  ret %s
}
func @saxpy(%n) {
entry:
  %s = mov 0
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %t = mul %i, 3
  %s = add %s, %t
  %i = add %i, 1
  jmp head
exit:
  ret %s
}
`

const appSrc = `
module app
mem 2048
import @dot8
import @saxpy
func @main(%n) {
entry:
  %acc = mov 0
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %d = call @dot8(%i)
  %acc = add %acc, %d
  %i = add %i, 1
  jmp head
exit:
  %s = call @saxpy(%n)
  %acc = add %acc, %s
  ret %acc
}
`

func main() {
	// Build unit 1: the library, exporting its cost file.
	lib, err := core.CompileText(libSrc,
		core.WithDesign(instrument.CI),
		core.WithProbeInterval(250))
	if err != nil {
		log.Fatal(err)
	}
	costFile, err := lib.ExportCosts()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("library cost file (§2.6):\n%s\n\n", costFile)

	// Build unit 2: the application, importing the cost metadata.
	imported, err := analysis.ImportCosts(costFile)
	if err != nil {
		log.Fatal(err)
	}
	app, err := core.CompileText(appSrc,
		core.WithDesign(instrument.CI),
		core.WithProbeInterval(250),
		core.WithImportedCosts(imported))
	if err != nil {
		log.Fatal(err)
	}

	// Link and run.
	linked, err := ir.Link("prog", app.Mod, lib.Mod)
	if err != nil {
		log.Fatal(err)
	}
	machine := vm.New(linked, nil, 1)
	machine.LimitInstrs = 100_000_000
	th := machine.NewThread(0)
	th.RT.RecordIntervals = true
	fires := 0
	id := th.RT.RegisterCI(5000, func(uint64) { fires++ })
	result, err := th.Run("main", 3000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("result %d: %d interrupts over %d cycles (%d probes, both units instrumented)\n",
		result, fires, th.Stats.Cycles, th.Stats.Probes)
	ivs := th.RT.Intervals(id)
	if len(ivs) > 2 {
		var min, max int64 = ivs[1], ivs[1]
		for _, g := range ivs[1:] {
			if g < min {
				min = g
			}
			if g > max {
				max = g
			}
		}
		fmt.Printf("interval spread across the module boundary: %d..%d cycles\n", min, max)
	}
	fmt.Println("\ndot8 is exported as a transparent constant cost (callers fold it);")
	fmt.Println("saxpy is exported as self-instrumenting (callers charge only the call).")
}
