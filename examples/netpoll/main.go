// Netpoll demonstrates the §5.1 use case: a user-level network stack
// polled from a Compiler Interrupt handler on the application's own
// thread (CI-mTCP), compared against the stock helper-thread design
// and kernel networking, on the epserver/epwget workload.
//
//	go run ./examples/netpoll
package main

import (
	"fmt"

	"repro/internal/mtcp"
)

func main() {
	fmt.Println("mTCP epserver/epwget, 1 kB responses over 10 Gbps, 16 server threads")
	fmt.Println()
	conns := []int{1, 4, 16, 64, 256}

	fmt.Println("plain HTTP serving (Figure 4):")
	for _, mode := range []mtcp.Mode{mtcp.Kernel, mtcp.Orig, mtcp.CI} {
		for _, r := range mtcp.Sweep(mode, conns, 0) {
			fmt.Println(" ", r)
		}
	}

	fmt.Println("\nwith 1M cycles of application work per request (Figure 5):")
	for _, mode := range []mtcp.Mode{mtcp.Kernel, mtcp.Orig, mtcp.CI} {
		for _, r := range mtcp.Sweep(mode, []int{16, 64}, 1_000_000) {
			fmt.Println(" ", r)
		}
	}

	fmt.Println("\nCI-mTCP keeps the stack responsive at a fixed ~2500-cycle cadence")
	fmt.Println("regardless of application behavior: no helper thread, no context")
	fmt.Println("switches, and packet batches sized by the polling interval.")
}
