// Accuracy profiles and tunes a workload, then shows the interval
// accuracy of the CI and CI-Cycles designs against a 5,000-cycle
// target — the §5.4 methodology in miniature.
//
//	go run ./examples/accuracy [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/ci/instrument"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func main() {
	name := "radix"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	wl := workloads.ByName(name)
	if wl == nil {
		log.Fatalf("unknown workload %q (see Table 7 for names)", name)
	}

	// Profile the uninstrumented program to tune the IR/cycle ratio
	// (§4 footnote 3: "tuned for the specific application based on an
	// example execution").
	src := wl.Build(1)
	ipc, err := core.Profile(src, "main", []int64{0}, 1, nil, 200_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: measured %.3f IR/cycle (paper default: %.0f)\n\n",
		name, ipc, 4.0)

	const target = 5000
	for _, d := range []instrument.Design{instrument.CI, instrument.CICycles} {
		prog, err := core.Compile(wl.Build(1), core.WithDesign(d), core.WithProbeInterval(250))
		if err != nil {
			log.Fatal(err)
		}
		machine := vm.New(prog.Mod, nil, 1)
		machine.LimitInstrs = 400_000_000
		th := machine.NewThread(0)
		th.RT.IRPerCycle = ipc
		th.RT.RecordIntervals = true
		id := th.RT.RegisterCI(target, func(uint64) { th.Charge(25) })
		if _, err := th.Run("main", 0); err != nil {
			log.Fatal(err)
		}
		ivs := th.RT.Intervals(id)
		errs := make([]int64, len(ivs))
		for i, g := range ivs {
			errs[i] = g - target
		}
		sum := stats.Summarize(errs)
		fmt.Printf("%-10s %5d interrupts, error vs %d-cycle target:\n", d, len(ivs), target)
		fmt.Printf("           %s\n", sum)
		fmt.Printf("           probes executed: %d (%.1f%% taken)\n\n",
			th.Stats.Probes, 100*float64(th.Stats.ProbesTaken)/float64(th.Stats.Probes))
	}
	fmt.Println("CI-Cycles trades a cycle-counter read for the elimination of")
	fmt.Println("too-short intervals (its p10 error is never negative).")
}
