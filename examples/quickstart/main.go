// Quickstart reproduces Table 1 of the paper: a program registers a
// Compiler Interrupt handler that is called periodically throughout
// execution, printing the instruction count and the progress of the
// main loop.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/ci/instrument"
	"repro/internal/core"
)

// The IR equivalent of Table 1's counting loop: main increments a
// shared counter forever (here: a large, bounded number of times).
const program = `
module quickstart
mem 64

func @main() {
entry:
  %i = mov 0
  %limit = mov 2000000
  jmp loop
loop:
  %c = lt %i, %limit
  br %c, body, done
body:
  %i = add %i, 1
  store _, 0, %i
  jmp loop
done:
  ret %i
}
`

func main() {
	prog, err := core.CompileText(program,
		core.WithDesign(instrument.CI),
		core.WithProbeInterval(250))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled with %d probes (design %s)\n\n", prog.Instr.Probes, instrument.CI)

	// register_ci(100000, &handler): print progress every ~100k cycles.
	fires := 0
	res, err := prog.Run("main",
		core.WithInterval(100000),
		core.WithHandler(func(irSinceLast uint64) {
			fires++
			fmt.Printf("interrupt %2d: %7d IR since last handler call\n", fires, irSinceLast)
		}))
	if err != nil {
		log.Fatal(err)
	}
	s := res.Stats[0]
	fmt.Printf("\nloop result: %d increments\n", res.Returns[0])
	fmt.Printf("executed %d IR in %d cycles; %d probes run, %d interrupts delivered\n",
		s.Instrs, s.Cycles, s.Probes, s.HandlerCalls)
}
