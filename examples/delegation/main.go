// Delegation demonstrates the §5.3 use case: replacing a dedicated
// FFWD delegation server with a *designated* server — an application
// thread whose Compiler Interrupt handler runs the server poll loop —
// on the fetch-and-add microbenchmark.
//
//	go run ./examples/delegation
package main

import (
	"fmt"

	"repro/internal/ffwd"
)

func main() {
	fmt.Println("fetch-and-add throughput, delegation vs locks (Mops)")
	fmt.Printf("%-8s %12s %14s %10s %8s\n", "threads", "dedicated", "CI-designated", "spinlock", "MCS")
	for _, t := range []int{1, 2, 4, 8, 16, 32, 56} {
		ded := ffwd.Run(ffwd.Config{Design: ffwd.DelegationDedicated, Threads: t})
		ci := ffwd.Run(ffwd.Config{Design: ffwd.DelegationCI, Threads: t})
		spin := ffwd.Run(ffwd.Config{Design: ffwd.Spinlock, Threads: t})
		mcs := ffwd.Run(ffwd.Config{Design: ffwd.MCS, Threads: t})
		marker := ""
		if ci.ThroughputMops > ded.ThroughputMops && t > 1 {
			marker = "  <- designated server wins (no core burned)"
		}
		fmt.Printf("%-8d %12.2f %14.2f %10.2f %8.2f%s\n",
			t, ded.ThroughputMops, ci.ThroughputMops, spin.ThroughputMops, mcs.ThroughputMops, marker)
	}

	fmt.Println("\nclient-observed operation latency at 56 threads (cycles)")
	for _, d := range []ffwd.Design{ffwd.DelegationDedicated, ffwd.DelegationCI, ffwd.MCS, ffwd.Spinlock} {
		r := ffwd.Run(ffwd.Config{Design: d, Threads: 56, RecordLatencies: true})
		s := r.LatencySummary
		fmt.Printf("%-14s p10=%-9d p50=%-9d p99.9=%-9d max=%d\n", d, s.P10, s.P50, s.P999, s.Max)
	}
	fmt.Println("\ndelegation latency is near-constant; locking spans orders of magnitude.")
}
