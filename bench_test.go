// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5). Each benchmark runs the same harness the ciexp
// command uses and reports the figure's headline numbers as custom
// metrics; run with -v to see the full rows.
//
//	go test -bench=. -benchmem
//
// Use -short to restrict the microbenchmark figures to a workload
// subset.
package repro

import (
	"flag"
	"fmt"
	"io"
	"testing"

	"repro/internal/ci/ciruntime"
	"repro/internal/ci/instrument"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/ffwd"
	"repro/internal/ir"
	"repro/internal/mtcp"
	"repro/internal/shenango"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// sweepWorkers selects the experiment-engine worker count for the
// sweep benchmarks (0 = GOMAXPROCS; 1 reproduces the serial pipeline).
var sweepWorkers = flag.Int("sweepworkers", 0, "experiment engine workers for sweep benchmarks (0 = GOMAXPROCS)")

// benchEngine returns a fresh engine per sweep so benchmark iterations
// time the full measurement (compile + baselines + runs), not cache
// replay; memoization still collapses duplicate work within one sweep.
func benchEngine() *engine.Engine { return engine.New(*sweepWorkers) }

// quickWorkloads is the -short subset: one representative per control
// flow family.
var quickWorkloads = []string{
	"radix", "histogram", "barnes", "matrix_multiply",
	"volrend", "swaptions", "water-nsquared", "dedup",
}

// BenchmarkFigure4MTCPThroughputLatency regenerates Figure 4: download
// throughput and response latency of epserver/epwget vs concurrent
// connections for kernel networking, stock mTCP and CI-mTCP.
func BenchmarkFigure4MTCPThroughputLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ci := mtcp.Run(mtcp.Config{Mode: mtcp.CI, Conns: 64})
		orig := mtcp.Run(mtcp.Config{Mode: mtcp.Orig, Conns: 64})
		kern := mtcp.Run(mtcp.Config{Mode: mtcp.Kernel, Conns: 128})
		b.ReportMetric(ci.ThroughputGbps, "CI-Gbps")
		b.ReportMetric(orig.ThroughputGbps, "orig-Gbps")
		b.ReportMetric(kern.ThroughputGbps, "kernel-Gbps@128conns")
		b.ReportMetric(ci.ThroughputGbps/orig.ThroughputGbps, "CI/orig")
	}
	logRows(b, func(w io.Writer) error { return experiments.PrintFigure4(w, nil) })
}

// BenchmarkFigure5MTCPWithWork regenerates Figure 5: the same sweep
// with 1M cycles of application work per request.
func BenchmarkFigure5MTCPWithWork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ci := mtcp.Run(mtcp.Config{Mode: mtcp.CI, Conns: 16, WorkCycles: 1_000_000})
		orig := mtcp.Run(mtcp.Config{Mode: mtcp.Orig, Conns: 16, WorkCycles: 1_000_000})
		kern := mtcp.Run(mtcp.Config{Mode: mtcp.Kernel, Conns: 16, WorkCycles: 1_000_000})
		b.ReportMetric(ci.ThroughputGbps/orig.ThroughputGbps, "CI/orig")
		b.ReportMetric(kern.ThroughputGbps/ci.ThroughputGbps, "kernel/CI")
		b.ReportMetric(1-ci.MedianLatencyUs/orig.MedianLatencyUs, "latency-gain")
	}
}

// BenchmarkFigure6Shenango regenerates Figure 6: memcached latency vs
// load under the dedicated-core and CI-hosted IOKernels, plus the
// miner's recovered hash rate.
func BenchmarkFigure6Shenango(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stock := shenango.Run(shenango.Config{Kind: shenango.Dedicated, OfferedLoad: 200e3})
		ci8k := shenango.Run(shenango.Config{Kind: shenango.CIHosted, IntervalCycles: 8000, OfferedLoad: 200e3})
		ci64k := shenango.Run(shenango.Config{Kind: shenango.CIHosted, IntervalCycles: 64000, OfferedLoad: 50e3})
		b.ReportMetric(stock.MedianUs, "stock-p50-us")
		b.ReportMetric(ci8k.MedianUs, "CI8k-p50-us")
		b.ReportMetric(ci8k.MinerHashRate*100, "CI8k-miner-%")
		b.ReportMetric(ci64k.MinerHashRate*100, "CI64k-miner-%")
	}
}

// BenchmarkFigure7Delegation regenerates Figure 7: fetch-and-add
// throughput vs threads across delegation and lock designs.
func BenchmarkFigure7Delegation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var crossover int
		for _, t := range []int{2, 4, 8, 16, 32, 56} {
			ded := ffwd.Run(ffwd.Config{Design: ffwd.DelegationDedicated, Threads: t})
			ci := ffwd.Run(ffwd.Config{Design: ffwd.DelegationCI, Threads: t})
			if ci.ThroughputMops > ded.ThroughputMops {
				crossover = t
			}
		}
		ded56 := ffwd.Run(ffwd.Config{Design: ffwd.DelegationDedicated, Threads: 56})
		mcs56 := ffwd.Run(ffwd.Config{Design: ffwd.MCS, Threads: 56})
		spin56 := ffwd.Run(ffwd.Config{Design: ffwd.Spinlock, Threads: 56})
		b.ReportMetric(float64(crossover), "CI-wins-up-to-threads")
		b.ReportMetric(ded56.ThroughputMops, "delegation-Mops@56")
		b.ReportMetric(mcs56.ThroughputMops, "MCS-Mops@56")
		b.ReportMetric(spin56.ThroughputMops, "spin-Mops@56")
	}
	logRows(b, func(w io.Writer) error { return experiments.PrintFigure7(w, nil) })
}

// BenchmarkFigure8LatencyDistribution regenerates Figure 8: the client
// request latency distribution at 56 threads.
func BenchmarkFigure8LatencyDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ded := ffwd.Run(ffwd.Config{Design: ffwd.DelegationDedicated, Threads: 56, RecordLatencies: true})
		ci := ffwd.Run(ffwd.Config{Design: ffwd.DelegationCI, Threads: 56, RecordLatencies: true})
		spin := ffwd.Run(ffwd.Config{Design: ffwd.Spinlock, Threads: 56, RecordLatencies: true})
		b.ReportMetric(float64(ded.LatencySummary.P50), "delegation-p50-cy")
		b.ReportMetric(float64(ci.LatencySummary.P50), "delegationCI-p50-cy")
		b.ReportMetric(float64(spin.LatencySummary.P999), "spin-p99.9-cy")
	}
}

func overheadBench(b *testing.B, threads int) {
	designs := []instrument.Design{
		instrument.CI, instrument.CICycles, instrument.CnB,
		instrument.CD, instrument.Naive,
	}
	sel := selectedWorkloads(b)
	for i := 0; i < b.N; i++ {
		fig := experiments.MeasureFigureOverheadSel(benchEngine(), threads, 1, designs, sel)
		if len(fig.Errs) > 0 {
			b.Fatalf("sweep cells failed: %v", fig.Errs)
		}
		for di, d := range designs {
			b.ReportMetric(fig.Medians[di]*100, d.String()+"-median-%")
		}
	}
}

// BenchmarkSweepWorkers times the identical Figure 9 sweep at
// workers=1 (the legacy serial pipeline) and workers=8 (the sharded
// engine) with a fresh cache each iteration — the engine's headline
// wall-clock comparison. Results are byte-identical across the two
// (TestEngineWorkerDeterminism in internal/experiments); only the
// wall-clock differs.
func BenchmarkSweepWorkers(b *testing.B) {
	designs := []instrument.Design{
		instrument.CI, instrument.CICycles, instrument.CnB,
		instrument.CD, instrument.Naive,
	}
	sel := selectedWorkloads(b)
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fig := experiments.MeasureFigureOverheadSel(engine.New(workers), 1, 1, designs, sel)
				if len(fig.Errs) > 0 {
					b.Fatalf("sweep cells failed: %v", fig.Errs)
				}
			}
		})
	}
}

// BenchmarkFigure9Overhead1T regenerates Figure 9: overhead of the CI
// designs at a 5,000-cycle interval, single-threaded.
func BenchmarkFigure9Overhead1T(b *testing.B) { overheadBench(b, 1) }

// BenchmarkFigure11Overhead32T regenerates Figure 11: the same
// measurement with 32 threads sharing the memory system.
func BenchmarkFigure11Overhead32T(b *testing.B) { overheadBench(b, 32) }

// BenchmarkFigure10Accuracy regenerates Figure 10: interval error
// percentiles vs the 5,000-cycle target, per design.
func BenchmarkFigure10Accuracy(b *testing.B) {
	sel := selectedWorkloads(b)
	for i := 0; i < b.N; i++ {
		eng := benchEngine()
		var ciMed, cycMedMin []float64
		for _, wl := range sel {
			base, err := experiments.BaselineCached(eng, wl, 1, 1)
			if err != nil {
				b.Fatal(err)
			}
			ci, err := experiments.MeasureOverhead(eng, wl, instrument.CI, base, 1, 1, 5000, true)
			if err != nil {
				b.Fatal(err)
			}
			cyc, err := experiments.MeasureOverhead(eng, wl, instrument.CICycles, base, 1, 1, 5000, true)
			if err != nil {
				b.Fatal(err)
			}
			ciErr := intervalErrors(ci.Intervals, 5000)
			cycErr := intervalErrors(cyc.Intervals, 5000)
			ciMed = append(ciMed, float64(stats.Median(ciErr)))
			cycMedMin = append(cycMedMin, float64(stats.Summarize(cycErr).Min))
		}
		b.ReportMetric(stats.MedianF(ciMed), "CI-median-err-cy")
		b.ReportMetric(stats.MedianF(cycMedMin), "CICycles-min-err-cy")
	}
}

func intervalErrors(ivs []int64, target int64) []int64 {
	if len(ivs) == 0 {
		return []int64{0}
	}
	out := make([]int64, len(ivs))
	for i, g := range ivs {
		out[i] = g - target
	}
	return out
}

// BenchmarkFigure12CIvsHW regenerates Figure 12: slowdown vs interrupt
// interval for compiler interrupts against hardware interrupts.
func BenchmarkFigure12CIvsHW(b *testing.B) {
	intervals := []int64{500, 2000, 5000, 20000, 100000, 500000}
	for i := 0; i < b.N; i++ {
		pts, cerrs, err := experiments.MeasureFigure12(benchEngine(), 1, intervals, quickWorkloads)
		if err != nil {
			b.Fatal(err)
		}
		if len(cerrs) > 0 {
			b.Fatalf("sweep cells failed: %v", cerrs)
		}
		for _, p := range pts {
			b.ReportMetric(p.CISlowdown, fmt.Sprintf("CI@%d", p.IntervalCycles))
			b.ReportMetric(p.HWSlowdown, fmt.Sprintf("HW@%d", p.IntervalCycles))
		}
	}
}

// BenchmarkTable7Runtimes regenerates Table 7: normalized CI and Naive
// runtimes at 1 and 32 threads with the geo-mean row.
func BenchmarkTable7Runtimes(b *testing.B) {
	if testing.Short() {
		b.Skip("table 7 runs all 28 workloads at two thread counts")
	}
	for i := 0; i < b.N; i++ {
		rows, geo, cerrs := experiments.MeasureTable7(benchEngine(), 1)
		if len(cerrs) > 0 {
			b.Fatalf("sweep cells failed: %v", cerrs)
		}
		if len(rows) != 28 {
			b.Fatalf("rows = %d", len(rows))
		}
		b.ReportMetric(geo.CI1, "geomean-CI-1T")
		b.ReportMetric(geo.N1, "geomean-Naive-1T")
		b.ReportMetric(geo.CI32, "geomean-CI-32T")
		b.ReportMetric(geo.N32, "geomean-Naive-32T")
	}
}

// BenchmarkAblationLoopTransform quantifies the §3.4/§3.5 rewrites:
// CI overhead with and without the loop transform and cloning, on the
// loop-dominated workloads where they matter most (a design-choice
// ablation from DESIGN.md).
func BenchmarkAblationLoopTransform(b *testing.B) {
	loopHeavy := []string{"radix", "histogram", "matrix_multiply",
		"linear_regression", "swaptions", "string_match"}
	baseOpts := []core.Option{core.WithDesign(instrument.CI), core.WithProbeInterval(250)}
	cfgs := []struct {
		name string
		opts []core.Option
	}{
		{"full", baseOpts},
		{"no-clone", append(append([]core.Option{}, baseOpts...), core.WithLoopClone(false))},
		{"no-transform", append(append([]core.Option{}, baseOpts...), core.WithLoopTransform(false))},
	}
	for i := 0; i < b.N; i++ {
		eng := benchEngine()
		for _, c := range cfgs {
			var overheads []float64
			for _, name := range loopHeavy {
				wl := workloads.ByName(name)
				base, err := experiments.BaselineCached(eng, wl, 1, 1)
				if err != nil {
					b.Fatal(err)
				}
				prog, err := experiments.CompileCached(eng, wl, 1, c.opts...)
				if err != nil {
					b.Fatal(err)
				}
				machine := vm.New(prog.Mod, nil, 1)
				machine.LimitInstrs = 400_000_000
				th := machine.NewThread(0)
				th.RT.IRPerCycle = base.IRPerCycle
				th.RT.RegisterCI(5000, func(uint64) { th.Charge(experiments.HandlerWorkCycles) })
				if _, err := th.Run("main", 0); err != nil {
					b.Fatal(err)
				}
				overheads = append(overheads, float64(th.Stats.Cycles)/float64(base.Cycles)-1)
			}
			b.ReportMetric(stats.MedianF(overheads)*100, c.name+"-median-%")
		}
	}
}

// BenchmarkAblationProbeInterval sweeps the compile-time probe
// interval (the paper's key configuration parameter, §2.1).
func BenchmarkAblationProbeInterval(b *testing.B) {
	wl := workloads.ByName("barnes")
	for i := 0; i < b.N; i++ {
		eng := benchEngine()
		base, err := experiments.BaselineCached(eng, wl, 1, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, pi := range []int64{50, 250, 1000, 4000} {
			prog, err := experiments.CompileCached(eng, wl, 1, core.WithDesign(instrument.CI), core.WithProbeInterval(pi))
			if err != nil {
				b.Fatal(err)
			}
			machine := vm.New(prog.Mod, nil, 1)
			machine.LimitInstrs = 400_000_000
			th := machine.NewThread(0)
			th.RT.IRPerCycle = base.IRPerCycle
			th.RT.RegisterCI(5000, func(uint64) { th.Charge(experiments.HandlerWorkCycles) })
			if _, err := th.Run("main", 0); err != nil {
				b.Fatal(err)
			}
			over := float64(th.Stats.Cycles)/float64(base.Cycles) - 1
			b.ReportMetric(over*100, fmt.Sprintf("probeIR=%d-%%", pi))
		}
	}
}

// BenchmarkVMInterpreter measures raw interpreter speed (host ns per
// simulated IR instruction) — the substrate's own performance.
func BenchmarkVMInterpreter(b *testing.B) {
	m := ir.MustParse(`
func @main(%n) {
entry:
  %s = mov 0
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %s = add %s, %i
  %s = xor %s, %i
  %i = add %i, 1
  jmp head
exit:
  ret %s
}
`)
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		machine := vm.New(m, nil, 1)
		th := machine.NewThread(0)
		if _, err := th.Run("main", 200_000); err != nil {
			b.Fatal(err)
		}
		instrs = th.Stats.Instrs
	}
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "M-IR/s")
}

// BenchmarkCompiledSteps compares the VM's execution tiers on Table-7
// workloads: simulated IR steps per host second under the interpreter
// and under the closure-threaded compiled tier, running identically
// instrumented programs with a live 5000-cycle CI handler. The
// speedup-x metric is the headline number gated by
// TestCompiledTierSpeedup against BENCH_baseline.json (see that test
// for the calibrated floor and why it was revised down from the
// ROADMAP's aspirational ≥5x).
func BenchmarkCompiledSteps(b *testing.B) {
	names := quickWorkloads
	if !testing.Short() {
		names = nil
		for i := range workloads.All {
			names = append(names, workloads.All[i].Name)
		}
	}
	for i := 0; i < b.N; i++ {
		ts, err := experiments.MeasureTierSteps(benchEngine(), names, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ts.InterpStepsPerSec/1e6, "interp-M-steps/s")
		b.ReportMetric(ts.CompiledStepsPerSec/1e6, "compiled-M-steps/s")
		b.ReportMetric(ts.Speedup, "speedup-x")
	}
}

// BenchmarkCompile measures the CI compilation pipeline itself
// (canonicalize + analyze + instrument) over all 28 workloads.
func BenchmarkCompile(b *testing.B) {
	mods := make([]*ir.Module, len(workloads.All))
	for i := range workloads.All {
		mods[i] = workloads.All[i].Build(1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range mods {
			if _, err := core.Compile(m, core.WithDesign(instrument.CI), core.WithProbeInterval(250)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func selectedWorkloads(b *testing.B) []*workloads.Workload {
	if testing.Short() {
		out := make([]*workloads.Workload, 0, len(quickWorkloads))
		for _, n := range quickWorkloads {
			out = append(out, workloads.ByName(n))
		}
		return out
	}
	out := make([]*workloads.Workload, len(workloads.All))
	for i := range workloads.All {
		out[i] = &workloads.All[i]
	}
	return out
}

// logRows renders a figure's full rows into the -v log without
// affecting the benchmark's own timing loop.
func logRows(b *testing.B, print func(io.Writer) error) {
	b.Helper()
	if !testing.Verbose() {
		return
	}
	b.StopTimer()
	defer b.StartTimer()
	var sb logWriter
	if err := print(&sb); err != nil {
		b.Fatal(err)
	}
	b.Log("\n" + string(sb))
}

type logWriter []byte

func (w *logWriter) Write(p []byte) (int, error) {
	*w = append(*w, p...)
	return len(p), nil
}

// BenchmarkExtensionHybridWatchdog evaluates the paper's future-work
// hybrid: CI probes plus a timer-interrupt watchdog that bounds the
// late tail during uninstrumented gaps.
func BenchmarkExtensionHybridWatchdog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, cerrs := experiments.MeasureHybrid(benchEngine(), []string{"syscall-gaps"}, 5000, 2.0, 1)
		if len(cerrs) > 0 {
			b.Fatalf("sweep cells failed: %v", cerrs)
		}
		b.ReportMetric(float64(rows[0].CIMax), "CI-max-late-cy")
		b.ReportMetric(float64(rows[0].HybridMax), "hybrid-max-late-cy")
		b.ReportMetric(rows[0].HybridOverhead*100, "hybrid-overhead-%")
	}
}

// BenchmarkProbePrimitives measures the host-side cost of the runtime's
// probe fast paths (the operations Table 3 performs).
func BenchmarkProbePrimitives(b *testing.B) {
	b.Run("ProbeIR-untaken", func(b *testing.B) {
		rt := ciruntime.New()
		rt.RegisterCI(1<<40, func(uint64) {})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt.ProbeIR(1, int64(i))
		}
	})
	b.Run("ProbeIR-taken", func(b *testing.B) {
		rt := ciruntime.New()
		rt.RegisterCI(1, func(uint64) {})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt.ProbeIR(1000, int64(i))
		}
	})
	b.Run("ProbeCycles-gated", func(b *testing.B) {
		rt := ciruntime.New()
		rt.RegisterCI(1<<40, func(uint64) {})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rt.ProbeCycles(1, int64(i))
		}
	})
}

// BenchmarkExtensionProbeCounts regenerates the §5.4 probe-execution
// comparison (CI must cut dynamic probes >50% vs Naive).
func BenchmarkExtensionProbeCounts(b *testing.B) {
	if testing.Short() {
		b.Skip("runs all 28 workloads twice")
	}
	for i := 0; i < b.N; i++ {
		rows, cerrs := experiments.MeasureProbeCounts(benchEngine(), 1, 5000)
		if len(cerrs) > 0 {
			b.Fatalf("sweep cells failed: %v", cerrs)
		}
		var sum float64
		for _, r := range rows {
			sum += r.Reduction
		}
		b.ReportMetric(sum/float64(len(rows))*100, "mean-probe-reduction-%")
	}
}
