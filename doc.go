// Package repro is a from-scratch Go reproduction of "Frequent
// Background Polling on a Shared Thread, using Light-Weight Compiler
// Interrupts" (Basu, Montanari, Eriksson — PLDI 2021).
//
// The library lives under internal/: the IR and CFG analyses, the CI
// analysis and instrumentation passes, the libci runtime, the cycle-
// accurate VM substrate, the 28 Table-7 workloads, and the mTCP /
// Shenango / FFWD application models. See README.md for the map,
// DESIGN.md for the architecture and substitutions, and EXPERIMENTS.md
// for paper-vs-measured results. bench_test.go regenerates every table
// and figure of the paper's evaluation.
package repro
